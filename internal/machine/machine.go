// Package machine assembles the simulated CMP of Table 1: in-order blocking
// cores, private L1s with the Ghostwriter protocol, four directory homes
// with L2 banks at the mesh corners, the interconnect (the paper's 6x4 mesh
// by default; any registered noc topology), and per-home DRAM channels. It
// also provides the deterministic thread-execution harness that workload
// kernels run on.
package machine

import (
	"fmt"

	"ghostwriter/internal/cache"
	"ghostwriter/internal/coherence"
	"ghostwriter/internal/coherence/proto"
	"ghostwriter/internal/dram"
	"ghostwriter/internal/energy"
	"ghostwriter/internal/mem"
	"ghostwriter/internal/noc"
	"ghostwriter/internal/sim"
	"ghostwriter/internal/stats"
)

// Config selects the simulated system. The zero value is not useful; start
// from DefaultConfig.
type Config struct {
	Cores int // number of cores (= interconnect nodes used for L1s)

	// Mesh is the interconnect configuration. The name is historical (and
	// load-bearing for cache keys): it selects any registered noc topology
	// via its Topo field, with the paper's 6x4 XY mesh as the default.
	Mesh noc.Config

	L1           cache.Config
	L1HitLatency sim.Cycle

	DirLatency sim.Cycle
	L2Latency  sim.Cycle
	DirNodes   []int // mesh nodes hosting a directory + L2 bank
	// L2PerCoreBytes sizes the shared L2 (Table 1: 128 kB per core); the
	// total is split evenly across the directory banks. 0 = unbounded.
	L2PerCoreBytes int

	DRAM dram.Config

	// Protocol names a registered coherence transition table
	// (internal/coherence/proto): "mesi", "ghostwriter", or "gw-noGI".
	// Empty selects the legacy mapping from the Ghostwriter bool —
	// "ghostwriter" when set, "mesi" otherwise — and, being omitted from
	// JSON, keeps pre-table cache keys valid: an old-format key (no
	// protocol field) means exactly that legacy rule.
	Protocol string `json:",omitempty"`
	// Ghostwriter enables the approximate protocol states; false gives the
	// baseline MESI directory protocol (the paper's d-distance 0 bars).
	// Subsumed by Protocol when that is non-empty.
	Ghostwriter bool
	// Policy selects how scribbles behave on blocks already in GS/GI
	// (PolicyResident reproduces the paper's Fig. 3; PolicyEscalate is the
	// bounded-drift ablation).
	Policy coherence.ScribblePolicy
	// GITimeout is the periodic GI→I timeout in cycles (Table 1: 1024).
	GITimeout sim.Cycle
	// ErrorBound caps hidden writes per GS/GI residency (§3.5 monitor;
	// 0 disables).
	ErrorBound uint32
	// AdaptiveGITimeout lets each L1 tune its sweep period at runtime.
	AdaptiveGITimeout bool
	// StaleLoads enables the Rengasamy-style load-side approximation.
	StaleLoads bool
	// MSI degrades the base protocol from MESI to MSI (no E state).
	MSI bool
	// MigratoryOpt enables the Stenström-style migratory-sharing
	// optimization in the baseline protocol (a §5 related-work baseline).
	MigratoryOpt bool
	// ProfileSimilarity turns on the Fig. 2 store-value d-distance profiler.
	ProfileSimilarity bool
	// Shards is the number of worker goroutines that drain the per-tile
	// timing wheels inside each lookahead window. 0 and 1 both mean the
	// caller's goroutine drains everything itself. The simulated schedule
	// — every cycle count, every stat, every byte of output — is
	// shard-count-invariant by construction (see DESIGN.md §12), so this
	// is purely a host-parallelism knob. Omitted from JSON when zero so
	// pre-sharding cache keys stay valid.
	Shards int `json:",omitempty"`
}

// DefaultConfig mirrors Table 1 of the paper: 24 in-order cores at 1 GHz,
// private 32 kB 2-way L1s with 64 B blocks and 2-cycle hits, shared L2 at
// 10 cycles, a 6x4 mesh with 1-cycle routers and links, 4 directory
// controllers at the mesh corners, and a 1024-cycle GI timeout.
func DefaultConfig() Config {
	return Config{
		Cores:          24,
		Mesh:           noc.DefaultConfig(),
		L1:             cache.Config{SizeBytes: 32 << 10, Ways: 2, BlockSize: 64},
		L1HitLatency:   2,
		DirLatency:     6,
		L2Latency:      10,
		L2PerCoreBytes: 128 << 10,
		DirNodes:       []int{0, 5, 18, 23}, // the 6x4 mesh corners
		DRAM:           dram.DefaultConfig(),
		Ghostwriter:    false,
		GITimeout:      1024,
	}
}

// Machine is one simulated CMP instance. Build with New, load inputs with
// the allocator and WriteBacking, run kernels with Run, then read results
// with ReadCoherent and inspect Stats/Energy.
type Machine struct {
	cfg     Config
	clu     *sim.Cluster
	net     *noc.Network
	l1s     []*coherence.L1
	dirs    []*coherence.Directory
	dirNode []noc.NodeID
	backing *mem.Memory
	alloc   *mem.Allocator

	// Counters are sharded like the engine: each tile's components write
	// only their own meter/stats, and the window merge phase writes the
	// merge pair (link arbitration). Stats()/Energy() fold everything into
	// the merged views in fixed tile order, so the totals are identical
	// for every shard count.
	tileMeters []*energy.Meter
	tileStats  []*stats.Stats
	mergeMeter *energy.Meter
	mergeSt    *stats.Stats
	meter      *energy.Meter // merged view, rebuilt by Energy()
	st         *stats.Stats  // merged view, rebuilt by Stats()
	lastCycles uint64        // end cycle of the last Run
	lastEvents uint64        // cumulative events fired as of the last Run

	threads []*Thread
	active  int
	arrived int
}

// New builds a machine from cfg.
func New(cfg Config) *Machine {
	if cfg.Cores <= 0 || cfg.Cores > coherence.MaxCores {
		panic(fmt.Sprintf("machine: unsupported core count %d", cfg.Cores))
	}
	if cfg.Cores > cfg.Mesh.NodeCount() {
		panic("machine: more cores than interconnect nodes")
	}
	if len(cfg.DirNodes) == 0 {
		panic("machine: no directory nodes")
	}
	nodes := cfg.Mesh.NodeCount()
	lookahead := cfg.Mesh.Lookahead()
	if lookahead > migrationCost {
		// The merge phase schedules migration resumes at stage-cycle +
		// migrationCost and relies on that landing at or past the horizon.
		panic(fmt.Sprintf("machine: NoC lookahead %d exceeds the migration cost %d", lookahead, migrationCost))
	}
	m := &Machine{
		cfg:        cfg,
		clu:        sim.NewCluster(nodes, lookahead, cfg.Shards),
		backing:    mem.New(),
		alloc:      mem.NewAllocator(0x1_0000, cfg.L1.BlockSize),
		tileMeters: make([]*energy.Meter, nodes),
		tileStats:  make([]*stats.Stats, nodes),
		mergeMeter: &energy.Meter{},
		mergeSt:    &stats.Stats{},
		meter:      &energy.Meter{},
		st:         &stats.Stats{},
	}
	for i := 0; i < nodes; i++ {
		m.tileMeters[i] = &energy.Meter{}
		m.tileStats[i] = &stats.Stats{}
	}
	m.net = noc.NewSharded(m.clu, cfg.Mesh, m.tileMeters, m.tileStats, m.mergeMeter, m.mergeSt)

	for _, n := range cfg.DirNodes {
		m.dirNode = append(m.dirNode, noc.NodeID(n))
	}
	home := func(a mem.Addr) noc.NodeID {
		return m.dirNode[int(uint64(a)/uint64(cfg.L1.BlockSize))%len(m.dirNode)]
	}

	protoName := cfg.Protocol
	if protoName == "" {
		if cfg.Ghostwriter {
			protoName = "ghostwriter"
		} else {
			protoName = "mesi"
		}
	}
	prot, ok := proto.Lookup(protoName)
	if !ok {
		panic(fmt.Sprintf("machine: unknown protocol %q (registered: %v)",
			protoName, proto.Names()))
	}

	dirCfg := coherence.DirConfig{
		Latency:      cfg.DirLatency,
		L2Latency:    cfg.L2Latency,
		BlockSize:    cfg.L1.BlockSize,
		NoExclusive:  cfg.MSI,
		MigratoryOpt: cfg.MigratoryOpt,
		Proto:        prot,
	}
	if cfg.L2PerCoreBytes > 0 {
		dirCfg.CapacityBlocks = cfg.L2PerCoreBytes * cfg.Cores / len(cfg.DirNodes) / cfg.L1.BlockSize
	}
	// One message pool per mesh node: a tile's components allocate and
	// free only from their own worker goroutine (the receiver frees, and a
	// delivered message belongs to the receiving tile), so the intrusive
	// free lists stay lock-free. Records drift between pools as messages
	// cross tiles, which is harmless — a pool is just a recycling bin.
	pools := make([]*coherence.MsgPool, nodes)
	for i := range pools {
		pools[i] = &coherence.MsgPool{}
	}
	dirAt := make(map[noc.NodeID]*coherence.Directory)
	for i, n := range m.dirNode {
		eng, meter, st := m.clu.Tile(int(n)), m.tileMeters[n], m.tileStats[n]
		ch := dram.NewChannel(eng, cfg.DRAM, m.backing, meter, st)
		d := coherence.NewDirectory(i, n, eng, m.net, dirCfg, ch, meter, st)
		d.UsePool(pools[n])
		m.dirs = append(m.dirs, d)
		dirAt[n] = d
	}

	l1Cfg := coherence.L1Config{
		Cache:             cfg.L1,
		HitLatency:        cfg.L1HitLatency,
		GITimeout:         cfg.GITimeout,
		Ghostwriter:       cfg.Ghostwriter,
		Proto:             prot,
		Policy:            cfg.Policy,
		ErrorBound:        cfg.ErrorBound,
		AdaptiveGITimeout: cfg.AdaptiveGITimeout,
		StaleLoads:        cfg.StaleLoads,
		ProfileSimilarity: cfg.ProfileSimilarity,
	}
	for i := 0; i < cfg.Cores; i++ {
		l1 := coherence.NewL1(i, m.clu.Tile(i), m.net, l1Cfg, home, m.tileMeters[i], m.tileStats[i])
		l1.UsePool(pools[i])
		m.l1s = append(m.l1s, l1)
	}

	// One handler per mesh node dispatches to the co-located components.
	for n := 0; n < m.net.Nodes(); n++ {
		node := noc.NodeID(n)
		l1 := (*coherence.L1)(nil)
		if n < cfg.Cores {
			l1 = m.l1s[n]
		}
		d := dirAt[node]
		m.net.Register(node, func(payload any) {
			msg := payload.(*coherence.Msg)
			if msg.ToDir {
				if d == nil {
					panic(fmt.Sprintf("machine: directory message at non-home node %d", node))
				}
				d.HandleMsg(msg)
				return
			}
			if l1 == nil {
				panic(fmt.Sprintf("machine: L1 message at coreless node %d", node))
			}
			l1.HandleMsg(msg)
		})
	}
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Alloc reserves simulated memory (packed, like malloc).
func (m *Machine) Alloc(size, align int) mem.Addr { return m.alloc.Alloc(size, align) }

// AllocPadded reserves block-aligned, block-padded simulated memory (the
// compiler padding around approximate regions, §3.1).
func (m *Machine) AllocPadded(size int) mem.Addr { return m.alloc.AllocPadded(size) }

// WriteBacking preloads input data into simulated DRAM before a run.
func (m *Machine) WriteBacking(a mem.Addr, data []byte) { m.backing.Write(a, data) }

// WriteBackingUint preloads one value into simulated DRAM.
func (m *Machine) WriteBackingUint(a mem.Addr, width int, v uint64) {
	m.backing.WriteUint(a, width, v)
}

// L1 returns core i's cache controller (used by tests and the invariant
// checker to inspect protocol state).
func (m *Machine) L1(i int) *coherence.L1 { return m.l1s[i] }

// CoreUtil is one thread's utilization breakdown over the last Run.
type CoreUtil struct {
	Thread int
	Core   int
	// Ops is the number of memory operations the thread issued.
	Ops uint64
	// MemCycles is the time spent in (or waiting on) the memory system.
	MemCycles uint64
	// ComputeCycles is the charged non-memory work.
	ComputeCycles uint64
	// BarrierCycles is the time spent waiting at barriers.
	BarrierCycles uint64
	// FinishCycle is the cycle the thread completed.
	FinishCycle uint64
}

// CoreReport returns each thread's utilization breakdown for the last Run —
// where the time went: memory stalls, compute, or barrier waits. (The three
// buckets need not sum to the wall time: issue gaps and migration costs are
// unattributed.)
func (m *Machine) CoreReport() []CoreUtil {
	out := make([]CoreUtil, len(m.threads))
	for i, t := range m.threads {
		out[i] = CoreUtil{
			Thread:        t.id,
			Core:          t.core,
			Ops:           t.ops,
			MemCycles:     uint64(t.memCycles),
			ComputeCycles: uint64(t.computeCyc),
			BarrierCycles: uint64(t.barrierCyc),
			FinishCycle:   uint64(t.finish),
		}
	}
	return out
}

// Network exposes the mesh (for link-utilization reporting).
func (m *Machine) Network() *noc.Network { return m.net }

// Stats returns the run's counters, folded from the per-tile stats (in
// tile order) plus the merge-phase stats into one view.
func (m *Machine) Stats() *stats.Stats {
	*m.st = stats.Stats{}
	for _, ts := range m.tileStats {
		m.st.Add(ts)
	}
	m.st.Add(m.mergeSt)
	m.st.Cycles = m.lastCycles
	m.st.Events = m.lastEvents
	return m.st
}

// ResetStats zeroes the measurement counters and the energy meters without
// touching any architectural state — the standard warm-up methodology:
// run a warm-up phase, reset, then measure the region of interest.
func (m *Machine) ResetStats() {
	for _, ts := range m.tileStats {
		*ts = stats.Stats{}
	}
	for _, tm := range m.tileMeters {
		*tm = energy.Meter{}
	}
	*m.mergeSt = stats.Stats{}
	*m.mergeMeter = energy.Meter{}
	*m.st = stats.Stats{}
	*m.meter = energy.Meter{}
	m.lastCycles = 0
	m.lastEvents = 0
}

// Energy returns the run's energy meter, folded from the per-tile meters
// (in tile order) plus the merge-phase meter. Floating-point accumulation
// order is therefore fixed, keeping the joules deterministic and
// shard-count-invariant.
func (m *Machine) Energy() *energy.Meter {
	*m.meter = energy.Meter{}
	for _, tm := range m.tileMeters {
		m.meter.Add(tm)
	}
	m.meter.Add(m.mergeMeter)
	return m.meter
}

// Cycles returns the current simulated time.
func (m *Machine) Cycles() uint64 { return uint64(m.clu.Now()) }

// WindowStats returns the cluster's window-scheduling counters (windows
// drained, merge barriers, steals, fast-path engagement), cumulative since
// construction. They describe how the run was driven, not what it
// computed: the values are host- and shard-dependent, so they must never
// enter Stats, a fingerprint, or a cached result.
func (m *Machine) WindowStats() sim.WindowStats { return m.clu.WindowStats() }

// dirFor returns the home directory object for a block address.
func (m *Machine) dirFor(a mem.Addr) *coherence.Directory {
	idx := int(uint64(a)/uint64(m.cfg.L1.BlockSize)) % len(m.dirs)
	return m.dirs[idx]
}

// ReadCoherent returns the system-wide coherent value at a: the owner's
// copy if a cache owns the block, else the L2 home's copy, else DRAM.
// Hidden GS/GI updates are invisible, exactly as the paper specifies
// (§3.5: updates in approximate states are forfeited when the block
// returns to coherency).
func (m *Machine) ReadCoherent(a mem.Addr, width int) uint64 {
	base := mem.Addr(uint64(a) &^ uint64(m.cfg.L1.BlockSize-1))
	d := m.dirFor(base)
	if owner := d.Owner(base); owner >= 0 {
		arr := m.l1s[owner].Array()
		if b := arr.Lookup(base); b != nil &&
			(b.State == cache.Modified || b.State == cache.Exclusive || b.State == cache.EVA) {
			return b.ReadWord(arr.Offset(a), width)
		}
	}
	if data, ok := d.Peek(base); ok {
		return mem.DecodeUint(data[int(uint64(a)-uint64(base)) : int(uint64(a)-uint64(base))+width])
	}
	return m.backing.ReadUint(a, width)
}
