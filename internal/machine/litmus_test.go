package machine

import (
	"testing"

	"ghostwriter/internal/mem"
)

// Litmus tests for §3.6 of the paper: precise data keeps the strict
// consistency of the underlying blocking in-order model, while data labeled
// approximate may observe stale values — and only that data.

// TestLitmusMessagePassingPrecise: the MP litmus test. With in-order
// blocking cores and a write-invalidate protocol, observing the flag
// implies observing the data — the forbidden (flag=1, data=0) outcome must
// never appear for precise stores.
func TestLitmusMessagePassingPrecise(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		m := New(DefaultConfig())
		data := m.AllocPadded(4)
		flag := m.AllocPadded(4)
		var seenFlag, seenData uint32
		m.Run(2, func(th *Thread) {
			switch th.ID() {
			case 0:
				th.Compute(uint64(trial * 7)) // vary the interleaving
				th.Store32(data, 1)
				th.Store32(flag, 1)
			case 1:
				seenFlag = th.Load32(flag)
				seenData = th.Load32(data)
			}
		})
		if seenFlag == 1 && seenData == 0 {
			t.Fatalf("trial %d: MP violation — flag observed before data", trial)
		}
	}
}

// TestLitmusStoreBufferingPrecise: the SB litmus test. Blocking cores have
// no store buffer, so at least one thread must observe the other's store —
// the (r0=0, r1=0) outcome SC forbids... is forbidden here too.
func TestLitmusStoreBufferingPrecise(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		m := New(DefaultConfig())
		x := m.AllocPadded(4)
		y := m.AllocPadded(4)
		var r0, r1 uint32
		m.Run(2, func(th *Thread) {
			th.Compute(uint64((trial * (th.ID() + 1)) % 13))
			switch th.ID() {
			case 0:
				th.Store32(x, 1)
				r0 = th.Load32(y)
			case 1:
				th.Store32(y, 1)
				r1 = th.Load32(x)
			}
		})
		if r0 == 0 && r1 == 0 {
			t.Fatalf("trial %d: SB violation — both threads read 0", trial)
		}
	}
}

// TestLitmusCoherencePrecise: per-location coherence (CoRR). Two loads of
// the same location by the same thread must never observe values moving
// backwards relative to another thread's single store.
func TestLitmusCoherencePrecise(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		m := New(DefaultConfig())
		x := m.AllocPadded(4)
		var r1, r2 uint32
		m.Run(2, func(th *Thread) {
			switch th.ID() {
			case 0:
				th.Compute(uint64(trial * 3))
				th.Store32(x, 1)
			case 1:
				r1 = th.Load32(x)
				r2 = th.Load32(x)
			}
		})
		if r1 == 1 && r2 == 0 {
			t.Fatalf("trial %d: coherence violation — value moved backwards", trial)
		}
	}
}

// TestLitmusApproximateMayViolateMP: with the data store issued as a
// scribble that hides in GS, the consumer can legally observe
// (flag=1, data=stale) — §3.6's relaxation for approximate data, by
// construction.
func TestLitmusApproximateMayViolateMP(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ghostwriter = true
	m := New(cfg)
	data := m.AllocPadded(4)
	flag := m.AllocPadded(4)
	var seenFlag, seenData uint32
	m.Run(2, func(th *Thread) {
		switch th.ID() {
		case 0:
			// Both threads share `data` first so the producer's scribble
			// lands on S and hides in GS.
			th.Load32(data)
			th.Barrier()
			th.SetApproxDist(4)
			th.Scribble32(data, 1) // hidden in GS
			th.SetApproxDist(-1)
			th.Store32(flag, 1) // precise flag
			th.Barrier()
		case 1:
			th.Load32(data)
			th.Barrier()
			th.Barrier()
			seenFlag = th.Load32(flag)
			seenData = th.Load32(data) // own stale S copy: hits, sees 0
		}
	})
	if seenFlag != 1 {
		t.Fatal("flag must be visible (precise store)")
	}
	if seenData != 0 {
		t.Fatalf("approximate data read %d; the hidden GS update should be invisible", seenData)
	}
}

// TestLitmusAtomicFences: fetch-add acquires exclusive ownership, so a
// ticket handoff through an atomic is totally ordered even among scribbled
// neighbours in the same block.
func TestLitmusAtomicFences(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ghostwriter = true
	m := New(cfg)
	a := m.AllocPadded(64)
	counter := a      // atomic word
	neighbor := a + 4 // scribbled word in the same block
	m.Run(4, func(th *Thread) {
		th.SetApproxDist(8)
		for i := 0; i < 40; i++ {
			th.FetchAdd32(counter, 1)
			th.Scribble32(neighbor, uint32(i))
		}
	})
	if got := m.ReadCoherent(counter, 4); got != 160 {
		t.Fatalf("atomic counter = %d, want 160 despite scribbles in the same block", got)
	}
}

// TestLitmusDeterministicOutcomes: the same litmus program always produces
// the same outcome — the simulator's interleavings are reproducible, which
// is what makes approximate-error measurements meaningful.
func TestLitmusDeterministicOutcomes(t *testing.T) {
	run := func() (uint32, uint32) {
		m := New(DefaultConfig())
		x := m.AllocPadded(4)
		y := m.AllocPadded(4)
		var r0, r1 uint32
		m.Run(2, func(th *Thread) {
			switch th.ID() {
			case 0:
				th.Store32(x, 1)
				r0 = th.Load32(y)
			case 1:
				th.Store32(y, 1)
				r1 = th.Load32(x)
			}
		})
		return r0, r1
	}
	a0, a1 := run()
	b0, b1 := run()
	if a0 != b0 || a1 != b1 {
		t.Fatalf("litmus outcome not reproducible: (%d,%d) vs (%d,%d)", a0, a1, b0, b1)
	}
	_ = mem.Addr(0)
}
