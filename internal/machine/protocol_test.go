package machine

import (
	"testing"

	"ghostwriter/internal/cache"
	"ghostwriter/internal/mem"
	"ghostwriter/internal/stats"
)

// stateOf returns the coherence state core i's L1 holds for addr
// (cache.Invalid with present=false when the tag is absent).
func stateOf(m *Machine, core int, a mem.Addr) (cache.State, bool) {
	arr := m.L1(core).Array()
	b := arr.Lookup(a)
	if b == nil {
		return cache.Invalid, false
	}
	return b.State, true
}

// TestFig3Transitions walks the documented edges of the paper's Fig. 3
// state machine, one scenario per edge, asserting the observed L1 states.
func TestFig3Transitions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ghostwriter = true
	cfg.GITimeout = 512

	t.Run("I_load_E_then_store_M", func(t *testing.T) {
		m := New(cfg)
		a := m.AllocPadded(64)
		m.Run(1, func(th *Thread) {
			th.Load32(a)
			if st, ok := stateOf(m, 0, a); !ok || st != cache.Exclusive {
				t.Errorf("after cold load: %v, want E", st)
			}
			th.Store32(a, 1) // E → M is silent
			th.Sync()
			if st, _ := stateOf(m, 0, a); st != cache.Modified {
				t.Errorf("after store on E: %v, want M", st)
			}
		})
		if m.Stats().Msgs[stats.MsgUPGRADE] != 0 || m.Stats().Msgs[stats.MsgGETX] != 0 {
			t.Error("E→M must be silent")
		}
	})

	t.Run("S_store_UPGRADE_M", func(t *testing.T) {
		m := New(cfg)
		a := m.AllocPadded(64)
		m.Run(2, func(th *Thread) {
			th.Load32(a) // both load: E then S/S
			th.Barrier()
			if th.ID() == 0 {
				th.Store32(a, 7)
				th.Sync()
				if st, _ := stateOf(m, 0, a); st != cache.Modified {
					t.Errorf("after store on S: %v, want M", st)
				}
				if st, ok := stateOf(m, 1, a); ok && st != cache.Invalid {
					t.Errorf("remote copy after UPGRADE: %v, want I", st)
				}
			}
			th.Barrier()
		})
		if m.Stats().Msgs[stats.MsgUPGRADE] == 0 {
			t.Error("store on S must issue an UPGRADE")
		}
	})

	t.Run("S_scribble_GS_and_Inv_returns_I", func(t *testing.T) {
		m := New(cfg)
		a := m.AllocPadded(64)
		m.Run(2, func(th *Thread) {
			th.SetApproxDist(4)
			th.Load32(a)
			th.Barrier()
			if th.ID() == 1 {
				th.Scribble32(a, 1) // 0 → 1: within 4-distance → GS
				th.Sync()
				if st, _ := stateOf(m, 1, a); st != cache.GS {
					t.Errorf("after similar scribble on S: %v, want GS", st)
				}
			}
			th.Barrier()
			if th.ID() == 0 {
				th.Store32(a, 100) // conventional: invalidates the GS copy
			}
			th.Barrier()
			if th.ID() == 1 {
				if st, ok := stateOf(m, 1, a); !ok || st != cache.Invalid {
					t.Errorf("GS after remote store: %v (present=%v), want I with tag", st, ok)
				}
			}
			th.Barrier()
		})
		if m.Stats().GSEntries == 0 || m.Stats().GSInvalidations == 0 {
			t.Errorf("expected GS entry + invalidation, got %+v", m.Stats())
		}
	})

	t.Run("I_scribble_GI_and_timeout_returns_I", func(t *testing.T) {
		m := New(cfg)
		a := m.AllocPadded(64)
		m.Run(2, func(th *Thread) {
			th.SetApproxDist(4)
			switch th.ID() {
			case 0:
				th.Store32(a, 8)
				th.Barrier() // t1 caches it
				th.Barrier()
				th.Store32(a, 12) // invalidate t1
				th.Barrier()
			case 1:
				th.Barrier()
				th.Load32(a)
				th.Barrier()
				th.Barrier()
				// t1 now holds the tag in I. A similar scribble enters GI
				// without a GETX.
				before := m.Stats().Msgs[stats.MsgGETX]
				th.Scribble32(a, 13)
				th.Sync()
				if st, _ := stateOf(m, 1, a); st != cache.GI {
					t.Errorf("after similar scribble on I: %v, want GI", st)
				}
				if m.Stats().Msgs[stats.MsgGETX] != before {
					t.Error("GI entry must not send GETX")
				}
				th.Compute(2000) // outlive the timeout
				th.Sync()
				if st, _ := stateOf(m, 1, a); st != cache.Invalid {
					t.Errorf("GI after timeout: %v, want I", st)
				}
			}
		})
	})

	t.Run("M_remote_load_downgrades_to_S", func(t *testing.T) {
		m := New(cfg)
		a := m.AllocPadded(64)
		m.Run(2, func(th *Thread) {
			if th.ID() == 0 {
				th.Store32(a, 3)
			}
			th.Barrier()
			if th.ID() == 1 {
				if got := th.Load32(a); got != 3 {
					t.Errorf("forwarded load = %d, want 3", got)
				}
			}
			th.Barrier()
			st0, _ := stateOf(m, 0, a)
			st1, _ := stateOf(m, 1, a)
			if st0 != cache.Shared || st1 != cache.Shared {
				t.Errorf("after FwdGETS: owner=%v requestor=%v, want S/S", st0, st1)
			}
			th.Barrier()
		})
	})

	t.Run("M_remote_store_invalidates_owner", func(t *testing.T) {
		m := New(cfg)
		a := m.AllocPadded(64)
		m.Run(2, func(th *Thread) {
			if th.ID() == 0 {
				th.Store32(a, 3)
			}
			th.Barrier()
			if th.ID() == 1 {
				th.Store32(a+4, 9) // GETX → FwdGETX
			}
			th.Barrier()
			st0, ok0 := stateOf(m, 0, a)
			st1, _ := stateOf(m, 1, a)
			if ok0 && st0 != cache.Invalid {
				t.Errorf("old owner after FwdGETX: %v, want I", st0)
			}
			if st1 != cache.Modified {
				t.Errorf("new owner: %v, want M", st1)
			}
			th.Barrier()
		})
	})

	t.Run("GS_GI_grant_local_read_write", func(t *testing.T) {
		m := New(cfg)
		a := m.AllocPadded(64)
		m.Run(2, func(th *Thread) {
			th.SetApproxDist(4)
			th.Load32(a)
			th.Barrier()
			if th.ID() == 1 {
				th.Scribble32(a, 2) // → GS
				th.Sync()
				loads, hits := m.Stats().Loads, m.Stats().L1LoadHits
				if th.Load32(a) != 2 {
					t.Error("load on GS must see the hidden value")
				}
				if m.Stats().Loads != loads+1 || m.Stats().L1LoadHits != hits+1 {
					t.Error("load on GS must hit")
				}
				th.Store32(a, 3) // conventional store also hits (approx mode on)
				th.Sync()
				if st, _ := stateOf(m, 1, a); st != cache.GS {
					t.Errorf("store on GS left state %v, want GS", st)
				}
				if th.Load32(a) != 3 {
					t.Error("hidden store lost")
				}
			}
			th.Barrier()
		})
	})
}

// TestFig4MigratorySharing reproduces the paper's Fig. 4 two-core
// migratory false-sharing example: under baseline MESI every epoch costs an
// UPGRADE/GETS pair; under Ghostwriter the scribble in epoch 1 keeps Core
// 0's copy valid, so its epoch-2 load hits.
func TestFig4MigratorySharing(t *testing.T) {
	scenario := func(gw bool) (loadHits uint64, upgrades uint64, c0Reads uint32) {
		cfg := DefaultConfig()
		cfg.Ghostwriter = gw
		m := New(cfg)
		a := m.AllocPadded(64) // offsets 0 and 4 within one block
		m.Run(2, func(th *Thread) {
			th.SetApproxDist(4)
			switch th.ID() {
			case 0:
				th.Store32(a, 100) // epoch 0: store <a> at offset 0
				th.Barrier()
				th.Barrier()
				// Epoch 2: Core 0 loads its own offset again.
				before := m.Stats().L1LoadHits
				c0Reads = th.Load32(a)
				loadHits = m.Stats().L1LoadHits - before
			case 1:
				th.Barrier()
				// Epoch 1: Core 1 loads offset 4 then scribbles it.
				th.Load32(a + 4)
				th.Scribble32(a+4, 1) // 0 → 1, within 4-distance
				th.Barrier()
			}
		})
		return loadHits, m.Stats().Msgs[stats.MsgUPGRADE], c0Reads
	}

	baseHit, baseUpg, baseVal := scenario(false)
	gwHit, gwUpg, gwVal := scenario(true)

	if baseVal != 100 || gwVal != 100 {
		t.Fatalf("Core 0 must read its own value back: base=%d gw=%d", baseVal, gwVal)
	}
	if baseHit != 0 {
		t.Error("baseline: Core 0's epoch-2 load must miss (invalidated by Core 1's UPGRADE)")
	}
	if gwHit != 1 {
		t.Error("ghostwriter: Core 0's epoch-2 load must hit (Core 1 scribbled into GS)")
	}
	if gwUpg >= baseUpg {
		t.Errorf("ghostwriter should issue fewer UPGRADEs: %d vs %d", gwUpg, baseUpg)
	}
}

// TestFig5ProducerConsumer reproduces the paper's Fig. 5 three-core
// producer-consumer example: Core 1's scribble to its invalid copy enters
// GI without a GETX, so Core 2's epoch-1 load still hits its shared copy,
// and the GI timeout later restores coherence, losing the hidden update.
func TestFig5ProducerConsumer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ghostwriter = true
	cfg.GITimeout = 512
	m := New(cfg)
	a := m.AllocPadded(64)
	var consumerHit bool
	m.Run(3, func(th *Thread) {
		th.SetApproxDist(4)
		switch th.ID() {
		case 1:
			th.Store32(a+4, 20) // epoch -1: Core 1 owns the block in M
			th.Barrier()
			th.Barrier() // epoch 0 ends: Core 0 produced, Core 2 consumed
			// Epoch 1: Core 1 becomes the producer but its copy is now I.
			before := m.Stats().Msgs[stats.MsgGETX]
			th.Scribble32(a+4, 21) // within 4-distance of the stale 20
			th.Sync()
			if st, _ := stateOf(m, 1, a); st != cache.GI {
				t.Errorf("producer state %v, want GI", st)
			}
			if m.Stats().Msgs[stats.MsgGETX] != before {
				t.Error("GI entry must suppress the GETX")
			}
			th.Barrier()
			th.Compute(2000) // epoch 2: timeout
			th.Sync()
			if st, _ := stateOf(m, 1, a); st != cache.Invalid {
				t.Errorf("after timeout: %v, want I", st)
			}
			th.Barrier()
		case 0:
			th.Barrier()
			th.Store32(a, 10) // epoch 0: Core 0 produces at offset 0
			th.Barrier()
			th.Barrier()
			th.Barrier()
		case 2:
			th.Barrier()
			th.Barrier()
			th.Load32(a) // consume Core 0's value; copy now S
			hitsBefore := m.Stats().L1LoadHits
			// Epoch 1: Core 1's hidden GI write must not have invalidated
			// our copy, so this load hits.
			if got := th.Load32(a); got != 10 {
				t.Errorf("consumer read %d, want 10", got)
			}
			consumerHit = m.Stats().L1LoadHits == hitsBefore+1
			th.Barrier()
			th.Barrier()
		}
	})
	if !consumerHit {
		t.Error("consumer load must hit: the GI write is hidden from the directory")
	}
	// The hidden 21 is lost; the coherent value at offset 4 is the old 20.
	if got := m.ReadCoherent(a+4, 4); got != 20 {
		t.Errorf("coherent value after timeout = %d, want 20 (update forfeited)", got)
	}
}
