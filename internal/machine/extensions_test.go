package machine

import (
	"math/rand"
	"testing"

	"ghostwriter/internal/cache"
	"ghostwriter/internal/coherence"
	"ghostwriter/internal/mem"
	"ghostwriter/internal/stats"
)

// TestErrorBoundCapsResidency checks the §3.5 drift monitor: with a bound
// of K hidden writes, a GS residency escalates after K absorbed stores,
// publishing the block.
func TestErrorBoundCapsResidency(t *testing.T) {
	run := func(bound uint32) (serviced, escalations uint64, coherent uint32) {
		cfg := DefaultConfig()
		cfg.Ghostwriter = true
		cfg.ErrorBound = bound
		m := New(cfg)
		a := m.AllocPadded(64)
		m.Run(2, func(th *Thread) {
			th.SetApproxDist(4)
			th.Load32(a) // both threads share the block
			th.Barrier()
			if th.ID() == 1 {
				// 20 similar scribbles: +1 steps stay within 4-distance of
				// the *current block content* most of the time.
				var v uint32
				for i := 0; i < 20; i++ {
					v++
					th.Scribble32(a, v)
				}
			}
			th.Barrier()
		})
		return m.Stats().ServicedByGS, m.Stats().BoundEscalations,
			uint32(m.ReadCoherent(a, 4))
	}

	unboundedServiced, unboundedEsc, unboundedVal := run(0)
	boundedServiced, boundedEsc, boundedVal := run(4)

	if unboundedEsc != 0 {
		t.Fatalf("bound disabled but %d escalations", unboundedEsc)
	}
	if boundedEsc == 0 {
		t.Fatal("bound of 4 never escalated across 20 hidden writes")
	}
	if boundedServiced >= unboundedServiced {
		t.Errorf("bounded run serviced %d >= unbounded %d", boundedServiced, unboundedServiced)
	}
	// The bounded run publishes intermediate values, so the coherent view
	// tracks the hidden counter much more closely.
	if boundedVal < unboundedVal {
		t.Errorf("bounded coherent value %d should be at least unbounded %d",
			boundedVal, unboundedVal)
	}
	if boundedVal < 16 {
		t.Errorf("bounded coherent value %d; escalations every 4 writes should publish ≥ 16", boundedVal)
	}
}

// TestMSIBaseProtocol checks the MSI variant: a cold load is granted S (no
// Exclusive state), so the following store needs an UPGRADE even with no
// other sharers — and Ghostwriter still retrofits on top.
func TestMSIBaseProtocol(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MSI = true
	cfg.Ghostwriter = true
	m := New(cfg)
	a := m.AllocPadded(64)
	m.Run(1, func(th *Thread) {
		th.Load32(a)
		if st, _ := stateOf(m, 0, a); st != cache.Shared {
			t.Errorf("cold load under MSI: %v, want S", st)
		}
		th.Store32(a, 5)
		th.Sync()
		if st, _ := stateOf(m, 0, a); st != cache.Modified {
			t.Errorf("store under MSI: %v, want M", st)
		}
		// A similar scribble after an invalidation-free S re-load enters GS
		// exactly as under MESI.
		th.SetApproxDist(4)
	})
	if m.Stats().Msgs[0 /* GETS */] == 0 {
		t.Error("no GETS recorded")
	}
	if err := m.CheckInvariants(false); err != nil {
		t.Fatal(err)
	}

	// The same single-threaded program under MESI needs no UPGRADE (E→M is
	// silent); under MSI it does.
	mesi := New(DefaultConfig())
	b := mesi.AllocPadded(64)
	mesi.Run(1, func(th *Thread) { th.Load32(b); th.Store32(b, 5) })
	if got := m.Stats().L1StoreMisses; got == 0 {
		t.Error("MSI store on S must miss")
	}
	if got := mesi.Stats().L1StoreMisses; got != 0 {
		t.Errorf("MESI store on E must hit, got %d misses", got)
	}
}

// TestMigrationForfeitsApproxState checks §3.5: a migrated thread leaves
// its approximate blocks behind — their hidden updates are not visible
// from the new core.
func TestMigrationForfeitsApproxState(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ghostwriter = true
	m := New(cfg)
	a := m.AllocPadded(64)
	var beforeMig, afterMig uint32
	m.Run(2, func(th *Thread) {
		th.SetApproxDist(4)
		switch th.ID() {
		case 0:
			th.Store32(a, 100)
			th.Barrier()
			th.Barrier()
		case 1:
			th.Barrier()
			th.Load32(a)          // S copy on core 1
			th.Scribble32(a, 101) // hidden in GS on core 1
			beforeMig = th.Load32(a)
			th.Migrate(7)
			if th.Core() != 7 {
				t.Errorf("thread on core %d after Migrate(7)", th.Core())
			}
			// The new core's cache is cold; the load fetches the coherent
			// copy, which never saw the hidden 101.
			afterMig = th.Load32(a)
			th.Barrier()
		}
	})
	if beforeMig != 101 {
		t.Fatalf("pre-migration read %d, want hidden 101", beforeMig)
	}
	if afterMig != 100 {
		t.Fatalf("post-migration read %d, want coherent 100 (update forfeited)", afterMig)
	}
}

func TestMigrationToOccupiedCorePanics(t *testing.T) {
	// The violation is detected in the engine, so the panic surfaces from
	// Run itself; the machine is unusable afterwards (as any panic leaves
	// it), which is fine for a validation test.
	defer func() {
		if recover() == nil {
			t.Error("migration onto a live thread's core must panic")
		}
	}()
	m := New(DefaultConfig())
	m.Run(2, func(th *Thread) {
		if th.ID() == 1 {
			th.Migrate(0) // core 0 is running thread 0
		}
		th.Barrier()
	})
}

// TestBaselineUnaffectedByKnobs: the error bound and policy knobs must not
// change baseline (non-Ghostwriter) executions at all.
func TestBaselineUnaffectedByKnobs(t *testing.T) {
	run := func(cfg Config) (uint64, uint64) {
		m := New(cfg)
		a := m.AllocPadded(4 * 8)
		cycles := m.Run(4, func(th *Thread) {
			th.SetApproxDist(4)
			mine := a + mem.Addr(4*th.ID())
			var v uint32
			for i := 0; i < 100; i++ {
				v++
				th.Scribble32(mine, v)
			}
		})
		return cycles, m.Stats().TotalMsgs()
	}
	base := DefaultConfig()
	withKnobs := DefaultConfig()
	withKnobs.ErrorBound = 3
	withKnobs.Policy = coherence.PolicyEscalate
	c1, m1 := run(base)
	c2, m2 := run(withKnobs)
	if c1 != c2 || m1 != m2 {
		t.Fatalf("baseline changed under knobs: cycles %d vs %d, msgs %d vs %d", c1, c2, m1, m2)
	}
}

// TestL2CapacityRecall squeezes a working set through a tiny L2 bank and
// checks that recalls fire, no data is lost, and the invariants hold.
func TestL2CapacityRecall(t *testing.T) {
	cfg := DefaultConfig()
	// 4 cores, tiny banks: 8 blocks per bank across 4 banks = 32 blocks of
	// L2, far below the 64-block working set.
	cfg.Cores = 8
	cfg.L2PerCoreBytes = 4 * 64 // = 8 blocks per bank after the /4 split
	m := New(cfg)
	const blocks = 64
	base := m.AllocPadded(64 * blocks)
	m.Run(4, func(th *Thread) {
		// Each thread writes its share of blocks, then everyone reads
		// everything back twice (forcing refetches through the tiny L2).
		for b := th.ID(); b < blocks; b += th.N() {
			th.Store32(base+mem.Addr(64*b), uint32(1000+b))
		}
		th.Barrier()
		for round := 0; round < 2; round++ {
			for b := 0; b < blocks; b++ {
				if got := th.Load32(base + mem.Addr(64*b)); got != uint32(1000+b) {
					t.Errorf("thread %d round %d: block %d = %d", th.ID(), round, b, got)
					return
				}
			}
			th.Barrier()
		}
	})
	if m.Stats().L2Recalls == 0 {
		t.Fatal("tiny L2 never recalled a line")
	}
	if err := m.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < blocks; b++ {
		if got := m.ReadCoherent(base+mem.Addr(64*b), 4); got != uint64(1000+b) {
			t.Fatalf("block %d lost through recall: %d", b, got)
		}
	}
	t.Logf("recalls: %d", m.Stats().L2Recalls)
}

// TestL2RecallStress hammers a tiny L2 with random mixed traffic under
// both protocols and validates invariants and load-value safety.
func TestL2RecallStress(t *testing.T) {
	for _, gw := range []bool{false, true} {
		gw := gw
		name := "baseline"
		if gw {
			name = "ghostwriter"
		}
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Cores = 8
			cfg.Ghostwriter = gw
			cfg.GITimeout = 256
			cfg.L2PerCoreBytes = 2 * 64
			m := New(cfg)
			const words = 1024 // 64 blocks vs 4 blocks of L2 per bank
			a := m.AllocPadded(4 * words)
			m.Run(8, func(th *Thread) {
				rng := rand.New(rand.NewSource(int64(77 + th.ID())))
				if gw {
					th.SetApproxDist(4)
				}
				for i := 0; i < 300; i++ {
					w := rng.Intn(words)
					addr := a + mem.Addr(4*w)
					switch rng.Intn(3) {
					case 0:
						th.Load32(addr)
					case 1:
						th.Store32(addr, uint32(rng.Intn(1<<16)))
					case 2:
						if gw {
							th.Scribble32(addr, uint32(rng.Intn(1<<16)))
						} else {
							th.Store32(addr, uint32(rng.Intn(1<<16)))
						}
					}
				}
			})
			if m.Stats().L2Recalls == 0 {
				t.Error("stress never triggered a recall")
			}
			if err := m.CheckInvariants(!gw); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMigratoryOptimization checks the §5 related-work baseline: with the
// Stenström-style optimization on, a classified migratory block's reader is
// granted ownership directly, eliminating the follow-up UPGRADE.
func TestMigratoryOptimization(t *testing.T) {
	run := func(opt bool) (upgrades, msgs uint64, v uint32) {
		cfg := DefaultConfig()
		cfg.MigratoryOpt = opt
		m := New(cfg)
		a := m.AllocPadded(64)
		m.Run(2, func(th *Thread) {
			// Strict read-then-write handoff between the two cores.
			for round := 0; round < 30; round++ {
				if round%2 == th.ID() {
					cur := th.Load32(a)
					th.Store32(a, cur+1)
				}
				th.Barrier()
			}
		})
		return m.Stats().Msgs[stats.MsgUPGRADE], m.Stats().TotalMsgs(),
			uint32(m.ReadCoherent(a, 4))
	}
	baseUpg, baseMsgs, baseVal := run(false)
	optUpg, optMsgs, optVal := run(true)
	if baseVal != 30 || optVal != 30 {
		t.Fatalf("migratory counters wrong: base=%d opt=%d", baseVal, optVal)
	}
	if optUpg >= baseUpg {
		t.Errorf("optimization did not cut UPGRADEs: %d vs %d", optUpg, baseUpg)
	}
	if optMsgs >= baseMsgs {
		t.Errorf("optimization did not cut traffic: %d vs %d", optMsgs, baseMsgs)
	}
	t.Logf("migratory: UPGRADEs %d→%d, traffic %d→%d", baseUpg, optUpg, baseMsgs, optMsgs)
}

// TestMigratoryOptDoesNotBreakSharing: a genuinely read-shared block must
// not be monopolized by the optimization.
func TestMigratoryOptDoesNotBreakSharing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MigratoryOpt = true
	m := New(cfg)
	a := m.AllocPadded(64)
	bad := false
	m.Run(4, func(th *Thread) {
		if th.ID() == 0 {
			th.Store32(a, 123)
		}
		th.Barrier()
		// All threads read repeatedly: pure read sharing.
		for i := 0; i < 20; i++ {
			if th.Load32(a) != 123 {
				bad = true
			}
		}
		th.Barrier()
	})
	if bad {
		t.Fatal("read sharing corrupted")
	}
	if err := m.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
}

// TestFetchAddIsAtomic hammers one counter from every thread; the final
// value must be exact — fetch-add acquires exclusive ownership per update
// regardless of interleaving.
func TestFetchAddIsAtomic(t *testing.T) {
	for _, gw := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.Ghostwriter = gw
		m := New(cfg)
		a := m.AllocPadded(8)
		const perThread = 150
		tickets := make(map[uint32]bool)
		var mu [24][]uint32 // per-thread ticket logs (no host sharing)
		m.Run(8, func(th *Thread) {
			if gw {
				th.SetApproxDist(8) // must not affect atomics
			}
			for i := 0; i < perThread; i++ {
				old := th.FetchAdd32(a, 1)
				mu[th.ID()] = append(mu[th.ID()], old)
			}
		})
		if got := m.ReadCoherent(a, 4); got != 8*perThread {
			t.Fatalf("gw=%v: counter = %d, want %d", gw, got, 8*perThread)
		}
		// Every fetched ticket is unique: atomicity held.
		for tid := 0; tid < 8; tid++ {
			for _, v := range mu[tid] {
				if tickets[v] {
					t.Fatalf("gw=%v: ticket %d issued twice", gw, v)
				}
				tickets[v] = true
			}
		}
	}
}

// TestTicketLock builds a ticket lock from FetchAdd and verifies mutual
// exclusion via an unprotected critical-section counter.
func TestTicketLock(t *testing.T) {
	m := New(DefaultConfig())
	next := m.AllocPadded(4)
	serving := m.AllocPadded(4)
	shared := m.AllocPadded(4)
	const perThread = 25
	m.Run(4, func(th *Thread) {
		for i := 0; i < perThread; i++ {
			ticket := th.FetchAdd32(next, 1)
			for th.Load32(serving) != ticket {
				th.Compute(8) // backoff
			}
			// Critical section: unprotected read-modify-write, safe only
			// under mutual exclusion.
			v := th.Load32(shared)
			th.Compute(3)
			th.Store32(shared, v+1)
			th.Store32(serving, ticket+1)
		}
	})
	if got := m.ReadCoherent(shared, 4); got != 4*perThread {
		t.Fatalf("critical section raced: %d, want %d", got, 4*perThread)
	}
}

// TestAdaptiveGITimeout: under sustained GI churn the controller shortens
// its sweep period; with no GI activity it backs off.
func TestAdaptiveGITimeout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ghostwriter = true
	cfg.GITimeout = 512
	cfg.AdaptiveGITimeout = true
	m := New(cfg)
	a := m.AllocPadded(64 * 4)
	m.Run(2, func(th *Thread) {
		th.SetApproxDist(8)
		switch th.ID() {
		case 0:
			// Keep invalidating thread 1's copies so its scribbles keep
			// resurrecting GI residencies across several blocks.
			for i := 0; i < 400; i++ {
				th.Store32(a+mem.Addr(64*(i%4)), uint32(i))
			}
			th.Barrier()
		case 1:
			// Store-through scribbles with constant values: after thread
			// 0's invalidations these land on I-with-tag, pass the scribe
			// against their own stale copies, and resurrect GI residencies
			// that only the sweep can end — so every sweep finds several.
			for i := 0; i < 400; i++ {
				blk := a + mem.Addr(64*(i%4))
				th.Scribble32(blk, 7)
				th.Compute(12)
			}
			th.Barrier()
		}
	})
	adapted := m.L1(1).CurrentGITimeout()
	if adapted >= 512 {
		t.Fatalf("busy controller's timeout %d did not shrink below 512", adapted)
	}
	// An idle controller (core 5 ran nothing) should have backed off.
	if idle := m.L1(5).CurrentGITimeout(); idle <= 512 {
		t.Fatalf("idle controller's timeout %d did not grow above 512", idle)
	}
	t.Logf("busy=%d idle=%d", adapted, m.L1(5).CurrentGITimeout())
}

// TestStaleLoads checks the Rengasamy-style load-side approximation (§5's
// prior work): inside an approximate region, a load to an invalidated block
// executes on stale data without a GETS; outside the region it refetches.
func TestStaleLoads(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ghostwriter = true
	cfg.StaleLoads = true
	m := New(cfg)
	a := m.AllocPadded(64)
	var staleRead, preciseRead uint32
	m.Run(2, func(th *Thread) {
		switch th.ID() {
		case 0:
			th.Store32(a, 5)
			th.Barrier()
			th.Barrier()
			th.Store32(a, 9) // invalidate thread 1's copy
			th.Barrier()
			th.Barrier()
		case 1:
			th.Barrier()
			th.Load32(a) // cache the 5
			th.Barrier()
			th.Barrier()
			th.SetApproxDist(4)
			staleRead = th.Load32(a) // approx region: stale 5, no GETS
			th.SetApproxDist(-1)
			preciseRead = th.Load32(a) // precise: refetch the coherent 9
			th.Barrier()
		}
	})
	if staleRead != 5 {
		t.Fatalf("approximate load read %d, want stale 5", staleRead)
	}
	if preciseRead != 9 {
		t.Fatalf("precise load read %d, want coherent 9", preciseRead)
	}
	if m.Stats().StaleLoadHits != 1 {
		t.Fatalf("StaleLoadHits = %d, want 1", m.Stats().StaleLoadHits)
	}
}

// TestStaleLoadsOffByDefault: without the knob, invalidated blocks always
// refetch.
func TestStaleLoadsOffByDefault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ghostwriter = true
	m := New(cfg)
	a := m.AllocPadded(64)
	var got uint32
	m.Run(2, func(th *Thread) {
		switch th.ID() {
		case 0:
			th.Store32(a, 5)
			th.Barrier()
			th.Barrier()
			th.Store32(a, 9)
			th.Barrier()
		case 1:
			th.Barrier()
			th.Load32(a)
			th.Barrier()
			th.Barrier()
			th.SetApproxDist(4)
			got = th.Load32(a)
		}
	})
	if got != 9 {
		t.Fatalf("load read %d, want coherent 9", got)
	}
	if m.Stats().StaleLoadHits != 0 {
		t.Fatal("stale loads fired while disabled")
	}
}
