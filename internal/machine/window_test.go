package machine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"ghostwriter/internal/mem"
	"ghostwriter/internal/sim"
)

// Window-boundary differential at the machine level: Compute bursts of
// co-prime lengths walk the per-thread issue cycles across every residue
// of the lookahead grid, so memory operations land on window-edge cycles
// (the last cycle of one window, the first of the next) in every thread.
// The fingerprint must be byte-identical across the single-shard fast
// path (shards 1), light sharding (2), and fuller sharding (4); run
// under -race this also exercises the work-stealing deques.

// windowEdgeFingerprint is scribbleFingerprint's boundary-targeted twin:
// same observable hash, but the kernel staggers issue cycles with
// Compute(1..3) so ops cluster on window boundaries instead of being
// smeared by uniform memory latency.
func windowEdgeFingerprint(tb testing.TB, protocol string, shards int, seed uint64) string {
	tb.Helper()
	cfg := DefaultConfig()
	cfg.Protocol = protocol
	cfg.Shards = shards
	m := New(cfg)

	const (
		threads = 6
		blocks  = 16
		ops     = 160
	)
	region := m.AllocPadded(blocks * 64)
	for i := 0; i < blocks*64/8; i++ {
		m.WriteBackingUint(region+mem.Addr(8*i), 8, splitmix64(seed+uint64(i)))
	}

	elapsed := m.Run(threads, func(th *Thread) {
		r := splitmix64(seed ^ uint64(th.ID())*0xFEED)
		th.SetApproxDist(4)
		for i := 0; i < ops; i++ {
			r = splitmix64(r)
			// Burst lengths 1..3 are co-prime with the default lookahead
			// (2), so consecutive ops issue on alternating grid residues
			// and every thread repeatedly hits the window-edge cycle.
			th.Compute(1 + r%3)
			a := region + mem.Addr(r%uint64(blocks*64)&^3)
			switch r >> 32 % 8 {
			case 0, 1, 2:
				th.Scribble32(a, uint32(r))
			case 3, 4:
				th.Store32(a, uint32(r>>8))
			case 5, 6:
				th.Load32(a)
			default:
				th.FetchAdd32(region+mem.Addr(th.ID()%4*64), 1)
			}
			if i == ops/2 {
				th.Barrier()
			}
		}
		th.Barrier()
	})

	var b strings.Builder
	fmt.Fprintf(&b, "elapsed=%d cycles=%d\n", elapsed, m.Cycles())
	stj, err := json.Marshal(m.Stats())
	if err != nil {
		tb.Fatal(err)
	}
	b.Write(stj)
	e := m.Energy()
	fmt.Fprintf(&b, "\nenergy=%x/%x\n", e.MemoryPJ, e.NetworkPJ)
	crj, err := json.Marshal(m.CoreReport())
	if err != nil {
		tb.Fatal(err)
	}
	b.Write(crj)
	for i := 0; i < blocks*64/8; i++ {
		fmt.Fprintf(&b, "%x,", m.ReadCoherent(region+mem.Addr(8*i), 8))
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// TestWindowEdgeFingerprintAcrossShards is the CI-gated differential for
// the PR-9 schedulers: shards 1 (fast path) vs 2 vs 4 must agree to the
// byte for every registered protocol.
func TestWindowEdgeFingerprintAcrossShards(t *testing.T) {
	for _, p := range shardProtocols {
		p := p
		t.Run(p, func(t *testing.T) {
			want := windowEdgeFingerprint(t, p, 1, 0xB0DA)
			var wg sync.WaitGroup
			var mu sync.Mutex
			got := make(map[int]string)
			for _, shards := range []int{2, 4} {
				shards := shards
				wg.Add(1)
				go func() {
					defer wg.Done()
					fp := windowEdgeFingerprint(t, p, shards, 0xB0DA)
					mu.Lock()
					got[shards] = fp
					mu.Unlock()
				}()
			}
			wg.Wait()
			for shards, fp := range got {
				if fp != want {
					t.Errorf("shards=%d fingerprint %s, want %s (fast path)", shards, fp, want)
				}
			}
		})
	}
}

// TestWindowStatsByShardMode pins which scheduler each shard count
// selects and that the observability counters are live: the fast path at
// shards <= 1 (never stealing), the worker pool above it, and
// window/merge counts that agree across modes (the schedule is
// shard-invariant even though wall-clock is not).
func TestWindowStatsByShardMode(t *testing.T) {
	stats := func(shards int) sim.WindowStats {
		cfg := DefaultConfig()
		cfg.Shards = shards
		m := New(cfg)
		region := m.AllocPadded(4 * 64)
		m.Run(4, func(th *Thread) {
			th.SetApproxDist(4)
			for i := 0; i < 50; i++ {
				th.Scribble32(region+mem.Addr(th.ID()%4*64), uint32(i))
				th.Load32(region + mem.Addr((th.ID()+1)%4*64))
			}
			th.Barrier()
		})
		return m.WindowStats()
	}

	fast := stats(1)
	if !fast.FastPath {
		t.Error("shards=1 did not take the fast path")
	}
	if fast.Steals != 0 {
		t.Errorf("fast path recorded %d steals; it has no workers", fast.Steals)
	}
	if fast.Windows == 0 || fast.Merges == 0 || fast.Events == 0 {
		t.Errorf("fast-path counters dead: %+v", fast)
	}

	sharded := stats(4)
	if sharded.FastPath {
		t.Error("shards=4 reports FastPath")
	}
	if sharded.Windows != fast.Windows || sharded.Merges != fast.Merges || sharded.Events != fast.Events {
		t.Errorf("schedule counters differ across modes:\n fast    %+v\n sharded %+v", fast, sharded)
	}
}
