package machine

import (
	"fmt"
	"math/rand"
	"testing"

	"ghostwriter/internal/cache"
	"ghostwriter/internal/coherence"
	"ghostwriter/internal/mem"
	"ghostwriter/internal/sim"
)

// tinyConfig builds a machine with pathologically small caches so that
// evictions, forwarded requests to EV_A blocks, stale PUTs, and L2 recalls
// happen constantly — the race paths a friendly working set never touches.
func tinyConfig(gw bool) Config {
	cfg := DefaultConfig()
	cfg.Cores = 8
	cfg.L1 = cache.Config{SizeBytes: 4 * 64, Ways: 2, BlockSize: 64} // 2 sets x 2 ways
	cfg.L2PerCoreBytes = 2 * 64                                      // 4 blocks per bank
	cfg.Ghostwriter = gw
	cfg.GITimeout = 128
	return cfg
}

// TestEvictionRaceSoak drives random traffic through the tiny machine with
// many seeds and validates the protocol invariants and load-value safety
// after every run. This is the test that exercises EV_A serving forwards,
// stale PUT acks, upgrade races, and recalls concurrently.
func TestEvictionRaceSoak(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 8, 13, 21, 34}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, gw := range []bool{false, true} {
		for _, seed := range seeds {
			gw, seed := gw, seed
			t.Run(fmt.Sprintf("gw=%v/seed=%d", gw, seed), func(t *testing.T) {
				t.Parallel()
				m := New(tinyConfig(gw))
				// 24 blocks: 12x the L1 capacity, 1.5x the total L2.
				const words = 24 * 16
				a := m.AllocPadded(4 * words)
				nthreads := 8
				type acc struct {
					addr mem.Addr
					val  uint32
				}
				stores := make([][]acc, nthreads)
				loads := make([][]acc, nthreads)
				m.Run(nthreads, func(th *Thread) {
					rng := rand.New(rand.NewSource(seed*100 + int64(th.ID())))
					if gw {
						th.SetApproxDist(4)
					}
					for i := 0; i < 250; i++ {
						w := rng.Intn(words)
						addr := a + mem.Addr(4*w)
						switch rng.Intn(4) {
						case 0, 1:
							v := th.Load32(addr)
							loads[th.ID()] = append(loads[th.ID()], acc{addr, v})
						case 2:
							v := uint32(rng.Intn(4096))
							th.Store32(addr, v)
							stores[th.ID()] = append(stores[th.ID()], acc{addr, v})
						case 3:
							v := uint32(rng.Intn(4096))
							if gw {
								th.Scribble32(addr, v)
							} else {
								th.Store32(addr, v)
							}
							stores[th.ID()] = append(stores[th.ID()], acc{addr, v})
						}
					}
				})
				if err := m.CheckInvariants(!gw); err != nil {
					t.Fatal(err)
				}
				if m.Stats().L2Recalls == 0 {
					t.Error("tiny L2 should have recalled lines")
				}
				// Load-value safety: every loaded value was stored by
				// someone (or is the initial zero).
				written := map[mem.Addr]map[uint32]bool{}
				for _, ss := range stores {
					for _, s := range ss {
						if written[s.addr] == nil {
							written[s.addr] = map[uint32]bool{}
						}
						written[s.addr][s.val] = true
					}
				}
				for tid, ls := range loads {
					for _, l := range ls {
						if l.val != 0 && !written[l.addr][l.val] {
							t.Fatalf("thread %d loaded %d from %#x, never stored",
								tid, l.val, l.addr)
						}
					}
				}
			})
		}
	}
}

// TestWritebackThroughTinyHierarchy checks that dirty data survives the
// full journey L1 → (eviction) → L2 → (recall) → DRAM → back.
func TestWritebackThroughTinyHierarchy(t *testing.T) {
	m := New(tinyConfig(false))
	const blocks = 64
	a := m.AllocPadded(64 * blocks)
	m.Run(1, func(th *Thread) {
		for b := 0; b < blocks; b++ {
			th.Store32(a+mem.Addr(64*b), uint32(7000+b))
		}
		// Everything has been evicted from the 4-block L1 and mostly
		// recalled out of the 4-block-per-bank L2 by now.
		for b := 0; b < blocks; b++ {
			if got := th.Load32(a + mem.Addr(64*b)); got != uint32(7000+b) {
				t.Errorf("block %d: %d", b, got)
			}
		}
	})
	if m.Stats().DRAMAccesses == 0 {
		t.Error("tiny hierarchy must have gone to DRAM")
	}
	if err := m.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
}

// TestApproxStatesSurviveEvictionPressure: GS/GI blocks forfeiting their
// updates on eviction must never corrupt the coherent view.
func TestApproxStatesSurviveEvictionPressure(t *testing.T) {
	m := New(tinyConfig(true))
	a := m.AllocPadded(64 * 8)
	m.Run(2, func(th *Thread) {
		th.SetApproxDist(4)
		switch th.ID() {
		case 0:
			th.Store32(a, 50)
			th.Barrier()
			th.Barrier()
		case 1:
			th.Barrier()
			th.Load32(a)
			th.Scribble32(a, 51) // GS, hidden
			// Blow the tiny L1: the GS block gets evicted (PUTS, updates
			// forfeited) long before these complete.
			for b := 1; b < 8; b++ {
				th.Store32(a+mem.Addr(64*b), uint32(b))
				th.Load32(a + mem.Addr(64*b))
			}
			th.Barrier()
		}
	})
	// The hidden 51 must be gone; the coherent 50 must have survived the
	// pressure.
	if got := m.ReadCoherent(a, 4); got != 50 {
		t.Fatalf("coherent value %d, want 50", got)
	}
	if err := m.CheckInvariants(false); err != nil {
		t.Fatal(err)
	}
}

// TestDeterminismUnderPressure re-runs a tiny-cache contended workload and
// demands bit-identical statistics.
func TestDeterminismUnderPressure(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		m := New(tinyConfig(true))
		a := m.AllocPadded(4 * 64 * 4)
		cycles := m.Run(8, func(th *Thread) {
			th.SetApproxDist(8)
			rng := rand.New(rand.NewSource(int64(th.ID())))
			for i := 0; i < 200; i++ {
				addr := a + mem.Addr(4*rng.Intn(256))
				if rng.Intn(2) == 0 {
					th.Load32(addr)
				} else {
					th.Scribble32(addr, uint32(i))
				}
			}
		})
		return cycles, m.Stats().TotalMsgs(), m.Stats().L2Recalls
	}
	c1, m1, r1 := run()
	c2, m2, r2 := run()
	if c1 != c2 || m1 != m2 || r1 != r2 {
		t.Fatalf("nondeterministic under pressure: (%d,%d,%d) vs (%d,%d,%d)",
			c1, m1, r1, c2, m2, r2)
	}
}

// TestConfigFuzz runs the stress kernel across randomized machine
// geometries (cores, L1 shape, L2 size, policies) and validates the
// protocol invariants for each — configuration-dependent protocol bugs
// (set-index aliasing, sharer-bitmask overflow, bank mapping) die here.
func TestConfigFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	meshes := []struct {
		w, h int
		dirs []int
	}{
		{6, 4, []int{0, 5, 18, 23}},
		{4, 2, []int{0, 7}},
		{2, 2, []int{0, 3}},
	}
	for trial := 0; trial < 12; trial++ {
		mesh := meshes[rng.Intn(len(meshes))]
		cores := 2 + rng.Intn(mesh.w*mesh.h-1)
		ways := 1 << rng.Intn(3)       // 1, 2, 4
		sets := 1 << (1 + rng.Intn(4)) // 2..16
		blockSize := 64
		cfg := DefaultConfig()
		cfg.Cores = cores
		cfg.Mesh.Width, cfg.Mesh.Height = mesh.w, mesh.h
		cfg.DirNodes = mesh.dirs
		cfg.L1 = cache.Config{SizeBytes: sets * ways * blockSize, Ways: ways, BlockSize: blockSize}
		cfg.L2PerCoreBytes = (1 + rng.Intn(4)) * blockSize
		cfg.Ghostwriter = rng.Intn(2) == 1
		cfg.GITimeout = sim.Cycle(64 << rng.Intn(4))
		cfg.Policy = coherence.ScribblePolicy(rng.Intn(3))
		cfg.MSI = rng.Intn(2) == 1
		cfg.MigratoryOpt = rng.Intn(2) == 1

		m := New(cfg)
		const words = 192
		a := m.AllocPadded(4 * words)
		nthreads := 1 + rng.Intn(cores)
		seed := rng.Int63()
		m.Run(nthreads, func(th *Thread) {
			r := rand.New(rand.NewSource(seed + int64(th.ID())))
			if cfg.Ghostwriter {
				th.SetApproxDist(1 + r.Intn(10))
			}
			for i := 0; i < 150; i++ {
				addr := a + mem.Addr(4*r.Intn(words))
				switch r.Intn(3) {
				case 0:
					th.Load32(addr)
				case 1:
					th.Store32(addr, uint32(r.Intn(1<<20)))
				default:
					th.Scribble32(addr, uint32(r.Intn(1<<20)))
				}
			}
		})
		if err := m.CheckInvariants(!cfg.Ghostwriter); err != nil {
			t.Fatalf("trial %d (cores=%d mesh=%dx%d ways=%d sets=%d gw=%v msi=%v policy=%v): %v",
				trial, cores, mesh.w, mesh.h, ways, sets, cfg.Ghostwriter, cfg.MSI, cfg.Policy, err)
		}
	}
}
