package machine

import (
	"math/rand"
	"testing"

	"ghostwriter/internal/coherence"
	"ghostwriter/internal/mem"
	"ghostwriter/internal/stats"
)

// smallConfig returns a Table 1 machine (cheap enough for unit tests).
func smallConfig() Config { return DefaultConfig() }

func gwConfig() Config {
	cfg := DefaultConfig()
	cfg.Ghostwriter = true
	return cfg
}

func TestSingleThreadStoreLoad(t *testing.T) {
	m := New(smallConfig())
	arr := m.Alloc(4*256, 4)
	m.Run(1, func(th *Thread) {
		for i := 0; i < 256; i++ {
			th.Store32(arr+mem.Addr(4*i), uint32(i*i))
		}
		for i := 0; i < 256; i++ {
			if got := th.Load32(arr + mem.Addr(4*i)); got != uint32(i*i) {
				t.Errorf("load[%d] = %d, want %d", i, got, i*i)
			}
		}
	})
	if !m.Quiesced() {
		t.Fatal("machine not quiesced after run")
	}
	if err := m.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		if got := m.ReadCoherent(arr+mem.Addr(4*i), 4); got != uint64(i*i) {
			t.Fatalf("ReadCoherent[%d] = %d, want %d", i, got, i*i)
		}
	}
}

func TestBackingPreload(t *testing.T) {
	m := New(smallConfig())
	a := m.Alloc(8, 8)
	m.WriteBackingUint(a, 8, 0xCAFEBABE12345678)
	var got uint64
	m.Run(1, func(th *Thread) { got = th.Load64(a) })
	if got != 0xCAFEBABE12345678 {
		t.Fatalf("preloaded value = %#x", got)
	}
}

func TestWidthsAndFloats(t *testing.T) {
	m := New(smallConfig())
	a := m.Alloc(64, 64)
	m.Run(1, func(th *Thread) {
		th.Store8(a, 0xAB)
		th.Store16(a+2, 0xBEEF)
		th.StoreF32(a+4, 3.5)
		th.StoreF64(a+8, -1.25e10)
		if th.Load8(a) != 0xAB || th.Load16(a+2) != 0xBEEF {
			t.Error("narrow round trip failed")
		}
		if th.LoadF32(a+4) != 3.5 || th.LoadF64(a+8) != -1.25e10 {
			t.Error("float round trip failed")
		}
	})
}

func TestTrueSharingAcrossThreads(t *testing.T) {
	m := New(smallConfig())
	a := m.Alloc(4, 64)
	var got uint32
	m.Run(2, func(th *Thread) {
		if th.ID() == 0 {
			th.Store32(a, 42)
		}
		th.Barrier()
		if th.ID() == 1 {
			got = th.Load32(a)
		}
	})
	if got != 42 {
		t.Fatalf("consumer read %d, want 42", got)
	}
	if err := m.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierRendezvous(t *testing.T) {
	m := New(smallConfig())
	a := m.Alloc(4*8, 64)
	fail := false
	m.Run(8, func(th *Thread) {
		th.Store32(a+mem.Addr(4*th.ID()), uint32(th.ID()+1))
		th.Barrier()
		// After the barrier every thread must see every other thread's
		// coherent store.
		for i := 0; i < 8; i++ {
			if th.Load32(a+mem.Addr(4*i)) != uint32(i+1) {
				fail = true
			}
		}
		th.Barrier()
	})
	if fail {
		t.Fatal("stores not visible after barrier")
	}
}

func TestMigratoryFalseSharingGeneratesTraffic(t *testing.T) {
	// Listing 1's pattern: each thread read-modify-writes its own word of a
	// shared block. Baseline MESI must ping-pong with UPGRADE/GETX traffic.
	m := New(smallConfig())
	a := m.Alloc(4*8, 64) // 8 words, one block
	m.Run(4, func(th *Thread) {
		mine := a + mem.Addr(4*th.ID())
		for i := 0; i < 50; i++ {
			v := th.Load32(mine)
			th.Store32(mine, v+1)
		}
	})
	st := m.Stats()
	if st.Msgs[stats.MsgUPGRADE]+st.Msgs[stats.MsgGETX] < 20 {
		t.Fatalf("expected heavy invalidation traffic, got UPGRADE=%d GETX=%d",
			st.Msgs[stats.MsgUPGRADE], st.Msgs[stats.MsgGETX])
	}
	// Every thread's final count must be exactly 50: false sharing hurts
	// performance, never correctness, in baseline MESI.
	for i := 0; i < 4; i++ {
		if got := m.ReadCoherent(a+mem.Addr(4*i), 4); got != 50 {
			t.Fatalf("thread %d counter = %d, want 50", i, got)
		}
	}
	if err := m.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, stats.Stats) {
		m := New(gwConfig())
		a := m.AllocPadded(4 * 24)
		cycles := m.Run(6, func(th *Thread) {
			th.SetApproxDist(4)
			mine := a + mem.Addr(4*th.ID())
			for i := 0; i < 200; i++ {
				v := th.Load32(mine)
				th.Scribble32(mine, v+uint32(i%3))
			}
			th.Barrier()
			th.Load32(a)
		})
		return cycles, *m.Stats()
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 {
		t.Fatalf("cycles differ across identical runs: %d vs %d", c1, c2)
	}
	if s1 != s2 {
		t.Fatalf("stats differ across identical runs:\n%+v\n%+v", s1, s2)
	}
}

func TestEvictionWriteback(t *testing.T) {
	// Write more conflicting blocks than L1 associativity; dirty victims
	// must write back through the directory so no update is lost.
	m := New(smallConfig())
	cfgSets := m.Config().L1.SizeBytes / (m.Config().L1.Ways * m.Config().L1.BlockSize)
	stride := mem.Addr(cfgSets * m.Config().L1.BlockSize)
	base := m.Alloc(int(stride)*8, 64)
	m.Run(1, func(th *Thread) {
		for i := 0; i < 8; i++ {
			th.Store32(base+stride*mem.Addr(i), uint32(100+i))
		}
		for i := 0; i < 8; i++ {
			if got := th.Load32(base + stride*mem.Addr(i)); got != uint32(100+i) {
				t.Errorf("after eviction, load[%d] = %d", i, got)
			}
		}
	})
	if err := m.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if got := m.ReadCoherent(base+stride*mem.Addr(i), 4); got != uint64(100+i) {
			t.Fatalf("writeback lost: block %d = %d", i, got)
		}
	}
}

func TestScribbleEntersGSAndHidesUpdate(t *testing.T) {
	m := New(gwConfig())
	a := m.AllocPadded(64)
	m.Run(2, func(th *Thread) {
		if th.ID() == 0 {
			th.Store32(a, 100) // owner in M
		}
		th.Barrier()
		if th.ID() == 1 {
			_ = th.Load32(a) // brings block S in both... S in thread 1
			th.Barrier()
			th.SetApproxDist(4)
			th.Scribble32(a, 101) // within 4-distance of 100 → GS
			th.Barrier()
			if got := th.Load32(a); got != 101 {
				t.Errorf("local read of GS block = %d, want hidden 101", got)
			}
		} else {
			th.Barrier()
			th.Barrier()
		}
		th.Barrier()
	})
	st := m.Stats()
	if st.GSEntries == 0 || st.ServicedByGS == 0 {
		t.Fatalf("expected GS entry, got %+v", st)
	}
	// The hidden update must be invisible to the coherent view.
	if got := m.ReadCoherent(a, 4); got != 100 {
		t.Fatalf("coherent view = %d, want 100 (scribble hidden)", got)
	}
	if err := m.CheckInvariants(false); err != nil {
		t.Fatal(err)
	}
}

func TestScribbleFallsBackWhenDissimilar(t *testing.T) {
	m := New(gwConfig())
	a := m.AllocPadded(64)
	m.Run(2, func(th *Thread) {
		if th.ID() == 0 {
			th.Store32(a, 100)
		}
		th.Barrier()
		if th.ID() == 1 {
			_ = th.Load32(a)
			th.SetApproxDist(4)
			// 100 → 4000: differs far above the low 4 bits; must fall back
			// to a conventional UPGRADE and become globally visible.
			th.Scribble32(a, 4000)
		}
	})
	st := m.Stats()
	if st.ScribbleFallbacks == 0 {
		t.Fatal("expected a scribble fallback")
	}
	if st.GSEntries != 0 {
		t.Fatal("dissimilar scribble must not enter GS")
	}
	if got := m.ReadCoherent(a, 4); got != 4000 {
		t.Fatalf("fallback store not coherent: %d", got)
	}
}

func TestGITimeoutRevertsBlock(t *testing.T) {
	cfg := gwConfig()
	cfg.GITimeout = 128
	m := New(cfg)
	a := m.AllocPadded(64)
	var before, after uint32
	m.Run(2, func(th *Thread) {
		switch th.ID() {
		case 0:
			th.Store32(a, 10)
			th.Barrier()
			th.Barrier()
			// Invalidate thread 1's copy via a conventional store.
			th.Store32(a, 12)
			th.Barrier()
			th.Barrier()
		case 1:
			th.Barrier()
			_ = th.Load32(a) // cache the block
			th.Barrier()
			th.Barrier()
			// Our copy is now I (tag present, stale data 10). A similar
			// scribble enters GI without any GETX.
			th.SetApproxDist(4)
			th.Scribble32(a, 11)
			before = th.Load32(a) // hits GI: sees hidden 11
			th.Compute(1000)      // outlive the 128-cycle timeout
			after = th.Load32(a)  // GI timed out → miss → coherent 12
			th.Barrier()
		}
	})
	st := m.Stats()
	if st.GIEntries == 0 {
		t.Fatalf("expected GI entry, got %+v", st)
	}
	if st.GITimeouts == 0 {
		t.Fatal("expected a GI timeout")
	}
	if before != 11 {
		t.Fatalf("read under GI = %d, want hidden 11", before)
	}
	if after != 12 {
		t.Fatalf("read after timeout = %d, want coherent 12", after)
	}
}

func TestBaselineIgnoresScribbles(t *testing.T) {
	m := New(smallConfig()) // Ghostwriter off
	a := m.AllocPadded(64)
	m.Run(2, func(th *Thread) {
		if th.ID() == 0 {
			th.Store32(a, 100)
		}
		th.Barrier()
		if th.ID() == 1 {
			_ = th.Load32(a)
			th.SetApproxDist(4)
			th.Scribble32(a, 101)
		}
	})
	st := m.Stats()
	if st.GSEntries != 0 || st.GIEntries != 0 {
		t.Fatal("baseline must never enter approximate states")
	}
	if got := m.ReadCoherent(a, 4); got != 101 {
		t.Fatalf("baseline scribble must behave as a store: %d", got)
	}
	if err := m.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
}

// TestRandomStress drives many threads over a small shared region and
// checks (a) protocol invariants at quiesce and (b) that every load
// returned some value that was actually stored to that address (or the
// initial zero) — a safety property that holds even for Ghostwriter's
// stale reads.
func TestRandomStress(t *testing.T) {
	for _, gw := range []bool{false, true} {
		gw := gw
		name := "baseline"
		if gw {
			name = "ghostwriter"
		}
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Ghostwriter = gw
			cfg.GITimeout = 256
			m := New(cfg)
			const words = 32 // two blocks, heavily contended
			a := m.AllocPadded(4 * words)

			nthreads := 8
			type access struct {
				addr mem.Addr
				val  uint32
			}
			storesByThread := make([][]access, nthreads)
			loadsByThread := make([][]access, nthreads)
			m.Run(nthreads, func(th *Thread) {
				rng := rand.New(rand.NewSource(int64(1000 + th.ID())))
				if gw {
					th.SetApproxDist(4)
				}
				for i := 0; i < 400; i++ {
					w := rng.Intn(words)
					addr := a + mem.Addr(4*w)
					switch rng.Intn(3) {
					case 0:
						v := th.Load32(addr)
						loadsByThread[th.ID()] = append(loadsByThread[th.ID()], access{addr, v})
					case 1:
						v := uint32(rng.Intn(1 << 16))
						th.Store32(addr, v)
						storesByThread[th.ID()] = append(storesByThread[th.ID()], access{addr, v})
					case 2:
						v := uint32(rng.Intn(1 << 16))
						if gw {
							th.Scribble32(addr, v)
						} else {
							th.Store32(addr, v)
						}
						storesByThread[th.ID()] = append(storesByThread[th.ID()], access{addr, v})
					}
				}
			})
			if err := m.CheckInvariants(!gw); err != nil {
				t.Fatal(err)
			}
			written := make(map[mem.Addr]map[uint32]bool)
			for _, ss := range storesByThread {
				for _, s := range ss {
					if written[s.addr] == nil {
						written[s.addr] = map[uint32]bool{}
					}
					written[s.addr][s.val] = true
				}
			}
			for tid, ls := range loadsByThread {
				for _, l := range ls {
					if l.val == 0 {
						continue // initial value
					}
					if !written[l.addr][l.val] {
						t.Fatalf("thread %d loaded %d from %#x, never stored there",
							tid, l.val, l.addr)
					}
				}
			}
		})
	}
}

func TestGhostwriterReducesTrafficOnFalseSharing(t *testing.T) {
	// The paper's core claim in miniature: the migratory false-sharing
	// pattern generates less coherence traffic under Ghostwriter when
	// store deltas stay within the d-distance.
	run := func(gw bool) *stats.Stats {
		cfg := DefaultConfig()
		cfg.Ghostwriter = gw
		m := New(cfg)
		a := m.AllocPadded(4 * 8)
		m.Run(4, func(th *Thread) {
			th.SetApproxDist(4)
			mine := a + mem.Addr(4*th.ID())
			for i := 0; i < 200; i++ {
				v := th.Load32(mine)
				th.Scribble32(mine, v+1) // +1 is almost always within 4-distance
			}
		})
		return m.Stats()
	}
	base := run(false)
	gw := run(true)
	if gw.TotalMsgs() >= base.TotalMsgs() {
		t.Fatalf("ghostwriter traffic %d not below baseline %d",
			gw.TotalMsgs(), base.TotalMsgs())
	}
	if gw.Msgs[stats.MsgUPGRADE] >= base.Msgs[stats.MsgUPGRADE] {
		t.Fatalf("UPGRADE count did not drop: %d vs %d",
			gw.Msgs[stats.MsgUPGRADE], base.Msgs[stats.MsgUPGRADE])
	}
}

func TestGhostwriterSpeedsUpFalseSharing(t *testing.T) {
	run := func(gw bool) uint64 {
		cfg := DefaultConfig()
		cfg.Ghostwriter = gw
		m := New(cfg)
		a := m.AllocPadded(4 * 24)
		return m.Run(8, func(th *Thread) {
			th.SetApproxDist(8)
			mine := a + mem.Addr(4*th.ID())
			for i := 0; i < 300; i++ {
				v := th.Load32(mine)
				th.Scribble32(mine, v+1)
			}
		})
	}
	base := run(false)
	gw := run(true)
	if gw >= base {
		t.Fatalf("ghostwriter (%d cycles) not faster than baseline (%d)", gw, base)
	}
}

func TestCoreReport(t *testing.T) {
	m := New(DefaultConfig())
	a := m.AllocPadded(4 * 4)
	wall := m.Run(3, func(th *Thread) {
		for i := 0; i < 50; i++ {
			th.Store32(a+mem.Addr(4*th.ID()), uint32(i))
		}
		th.Compute(uint64(100 * (th.ID() + 1)))
		th.Barrier()
	})
	rep := m.CoreReport()
	if len(rep) != 3 {
		t.Fatalf("report for %d threads, want 3", len(rep))
	}
	for _, r := range rep {
		if r.Ops != 50 {
			t.Errorf("thread %d ops = %d, want 50", r.Thread, r.Ops)
		}
		if r.ComputeCycles != uint64(100*(r.Thread+1)) {
			t.Errorf("thread %d compute = %d, want %d", r.Thread, r.ComputeCycles, 100*(r.Thread+1))
		}
		if r.MemCycles == 0 || r.FinishCycle == 0 || r.FinishCycle > wall+1 {
			t.Errorf("thread %d accounting odd: %+v", r.Thread, r)
		}
	}
	// Thread 0 computes least, so it waits longest at the barrier.
	if rep[0].BarrierCycles <= rep[2].BarrierCycles {
		t.Errorf("barrier accounting inverted: t0=%d t2=%d",
			rep[0].BarrierCycles, rep[2].BarrierCycles)
	}
}

func TestResetStatsKeepsArchitecturalState(t *testing.T) {
	m := New(DefaultConfig())
	a := m.AllocPadded(64 * 2) // one private block per thread
	// Warm-up: fault everything in.
	m.Run(2, func(th *Thread) { th.Store32(a+mem.Addr(64*th.ID()), 9) })
	if m.Stats().L1StoreMisses == 0 {
		t.Fatal("warm-up generated no misses")
	}
	m.ResetStats()
	if m.Stats().TotalMsgs() != 0 || m.Energy().TotalPJ() != 0 {
		t.Fatal("reset incomplete")
	}
	// Measured region: the same stores now hit in the warm caches.
	m.Run(2, func(th *Thread) { th.Store32(a+mem.Addr(64*th.ID()), 10) })
	st := m.Stats()
	if st.L1StoreMisses != 0 {
		t.Fatalf("measured region missed %d times; caches should be warm", st.L1StoreMisses)
	}
	if st.L1StoreHits == 0 {
		t.Fatal("measured region recorded no hits")
	}
	if got := m.ReadCoherent(a, 4); got != 10 {
		t.Fatalf("state corrupted by reset: %d", got)
	}
}

// TestPoliciesAgreeWithoutScribbles: with no scribbles in the program, all
// residency policies and monitor knobs must produce identical executions
// even under the Ghostwriter protocol — the approximate machinery is
// strictly opt-in per instruction.
func TestPoliciesAgreeWithoutScribbles(t *testing.T) {
	run := func(policy coherence.ScribblePolicy, bound uint32) (uint64, uint64) {
		cfg := DefaultConfig()
		cfg.Ghostwriter = true
		cfg.Policy = policy
		cfg.ErrorBound = bound
		m := New(cfg)
		a := m.AllocPadded(4 * 16)
		cycles := m.Run(4, func(th *Thread) {
			th.SetApproxDist(8) // armed, but no scribbles issued
			for i := 0; i < 150; i++ {
				v := th.Load32(a + mem.Addr(4*((i+th.ID())%16)))
				th.Store32(a+mem.Addr(4*th.ID()), v+1)
			}
		})
		return cycles, m.Stats().TotalMsgs()
	}
	c0, m0 := run(coherence.PolicyHybrid, 0)
	c1, m1 := run(coherence.PolicyResident, 0)
	c2, m2 := run(coherence.PolicyEscalate, 5)
	if c0 != c1 || c0 != c2 || m0 != m1 || m0 != m2 {
		t.Fatalf("scribble-free runs diverged: cycles %d/%d/%d msgs %d/%d/%d",
			c0, c1, c2, m0, m1, m2)
	}
}

// TestReadCoherentOracle: for single-threaded random programs, the
// coherent view after the run must equal a flat-memory oracle replay.
func TestReadCoherentOracle(t *testing.T) {
	f := func(seed int64) bool {
		cfg := DefaultConfig()
		cfg.L2PerCoreBytes = 4 * 64 // force hierarchy traffic
		m := New(cfg)
		const words = 128
		a := m.AllocPadded(4 * words)
		oracle := make([]uint32, words)
		rng := rand.New(rand.NewSource(seed))
		type op struct {
			w  int
			v  uint32
			ld bool
		}
		var prog []op
		for i := 0; i < 300; i++ {
			prog = append(prog, op{
				w: rng.Intn(words), v: uint32(rng.Intn(1 << 20)),
				ld: rng.Intn(3) == 0,
			})
		}
		ok := true
		m.Run(1, func(th *Thread) {
			for _, o := range prog {
				addr := a + mem.Addr(4*o.w)
				if o.ld {
					if th.Load32(addr) != oracle[o.w] {
						ok = false
						return
					}
				} else {
					th.Store32(addr, o.v)
					oracle[o.w] = o.v
				}
			}
		})
		if !ok {
			return false
		}
		for w := 0; w < words; w++ {
			if uint32(m.ReadCoherent(a+mem.Addr(4*w), 4)) != oracle[w] {
				return false
			}
		}
		return true
	}
	for seed := int64(1); seed <= 6; seed++ {
		if !f(seed) {
			t.Fatalf("oracle mismatch at seed %d", seed)
		}
	}
}
