package machine

import (
	"bytes"
	"fmt"

	"ghostwriter/internal/cache"
	"ghostwriter/internal/coherence"
	"ghostwriter/internal/mem"
)

// Quiesced reports whether no core operation or directory transaction is in
// flight (the state in which invariants are meaningful).
func (m *Machine) Quiesced() bool {
	for _, l := range m.l1s {
		if l.Busy() {
			return false
		}
	}
	for _, d := range m.dirs {
		if !d.Quiesced() {
			return false
		}
	}
	return true
}

// CheckInvariants validates the protocol's coherence invariants across all
// caches and directories. The machine must be quiesced. With strictData set
// (baseline runs with no scribbles), it additionally checks that every
// Shared copy holds the same bytes as the L2 home — a property Ghostwriter
// deliberately relaxes for GS blocks.
func (m *Machine) CheckInvariants(strictData bool) error {
	if !m.Quiesced() {
		return fmt.Errorf("machine: invariant check while not quiesced")
	}
	type holder struct {
		l1    int
		state cache.State
		data  []byte
	}
	copies := make(map[mem.Addr][]holder)
	for _, l := range m.l1s {
		arr := l.Array()
		id := l.ID()
		arr.ForEach(func(si int, b *cache.Block) {
			base := arr.AddrOf(si, b)
			copies[base] = append(copies[base], holder{l1: id, state: b.State, data: b.Data})
		})
	}
	for base, hs := range copies {
		owners := 0
		ownerID := -1
		var sharers coherence.SharerSet
		for _, h := range hs {
			switch h.state {
			case cache.Modified, cache.Exclusive:
				owners++
				ownerID = h.l1
			case cache.Shared, cache.GS:
				sharers.Add(h.l1)
			case cache.Invalid, cache.GI:
				// Untracked; no constraint.
			default:
				return fmt.Errorf("block %#x: transient state %v in l1 %d while quiesced",
					base, h.state, h.l1)
			}
		}
		// Single-writer: at most one owner, and no read copies beside it.
		if owners > 1 {
			return fmt.Errorf("block %#x: %d owners", base, owners)
		}
		if owners == 1 && !sharers.None() {
			return fmt.Errorf("block %#x: owner %d coexists with sharers %v", base, ownerID, sharers.IDs())
		}
		d := m.dirFor(base)
		if owners == 1 {
			if got := d.Owner(base); got != ownerID {
				return fmt.Errorf("block %#x: directory owner %d, cache owner %d", base, got, ownerID)
			}
		}
		if got := d.Owner(base); got >= 0 && owners == 0 {
			return fmt.Errorf("block %#x: directory names owner %d but no cache owns it", base, got)
		}
		// Every S/GS copy must be on the sharer list (GI copies must not).
		dirSharers := d.Sharers(base)
		for _, id := range sharers.IDs() {
			if !dirSharers.Has(id) {
				return fmt.Errorf("block %#x: cached sharers %v not covered by directory %v",
					base, sharers.IDs(), dirSharers.IDs())
			}
		}
		if strictData {
			l2, ok := d.Peek(base)
			for _, h := range hs {
				if h.state == cache.Shared && ok && !bytes.Equal(h.data, l2) {
					return fmt.Errorf("block %#x: shared copy in l1 %d diverges from L2", base, h.l1)
				}
			}
		}
	}
	// Directory sharer lists may legitimately include caches that silently
	// dropped... they may not: evictions of S/GS send PUTS. Check that every
	// directory-listed sharer actually holds the block in S/GS/Invalid-
	// transitional form.
	for base := range copies {
		d := m.dirFor(base)
		for _, id := range d.Sharers(base).IDs() {
			arr := m.l1s[id].Array()
			b := arr.Lookup(base)
			if b == nil || (b.State != cache.Shared && b.State != cache.GS) {
				st := cache.State(0)
				if b != nil {
					st = b.State
				}
				return fmt.Errorf("block %#x: directory lists l1 %d as sharer but cache state is %v (present=%v)",
					base, id, st, b != nil)
			}
		}
	}
	return nil
}
