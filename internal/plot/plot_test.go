package plot

import (
	"bytes"
	"strings"
	"testing"
)

func TestHBarBasics(t *testing.T) {
	var buf bytes.Buffer
	HBar(&buf, Config{Title: "demo", Width: 10, Unit: "%"}, []Bar{
		{"aa", 100},
		{"b", 50},
		{"c", 0},
	})
	out := buf.String()
	if !strings.Contains(out, "demo") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	// The 100% bar must be strictly longer than the 50% bar.
	full := strings.Count(lines[1], "█")
	half := strings.Count(lines[2], "█")
	zero := strings.Count(lines[3], "█")
	if !(full > half && half > zero) {
		t.Fatalf("bar lengths not ordered: %d / %d / %d", full, half, zero)
	}
	if full != 10 {
		t.Fatalf("max bar %d cells, want 10", full)
	}
	if !strings.Contains(lines[1], "100.00%") {
		t.Error("value annotation missing")
	}
}

func TestHBarFixedScaleAndClamping(t *testing.T) {
	var buf bytes.Buffer
	HBar(&buf, Config{Width: 8, Min: 0, Max: 10}, []Bar{
		{"over", 20}, // clamps to full
		{"neg", -5},  // clamps to empty
	})
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if strings.Count(lines[0], "█") != 8 {
		t.Error("over-scale bar must clamp to full width")
	}
	if strings.Count(lines[1], "█") != 0 {
		t.Error("negative bar must clamp to empty")
	}
}

func TestHBarDegenerateScale(t *testing.T) {
	var buf bytes.Buffer
	HBar(&buf, Config{Width: 8}, []Bar{{"zero", 0}})
	if !strings.Contains(buf.String(), "0.00") {
		t.Error("all-zero data must still render")
	}
}

func TestGroupedSharesScale(t *testing.T) {
	var buf bytes.Buffer
	Grouped(&buf, Config{Title: "t", Width: 10}, []string{"g1", "g2"}, map[string][]Bar{
		"g1": {{"x", 100}},
		"g2": {{"y", 50}},
	})
	out := buf.String()
	if !strings.Contains(out, "t — g1") || !strings.Contains(out, "t — g2") {
		t.Fatal("group titles missing")
	}
	lines := strings.Split(out, "\n")
	var xCells, yCells int
	for _, l := range lines {
		if strings.HasPrefix(l, "x") {
			xCells = strings.Count(l, "█")
		}
		if strings.HasPrefix(l, "y") {
			yCells = strings.Count(l, "█")
		}
	}
	if xCells != 10 || yCells != 5 {
		t.Fatalf("shared scale broken: x=%d y=%d", xCells, yCells)
	}
}
