// Package plot renders the evaluation's data series as terminal bar charts
// — the quickest way to *see* the paper's figures without leaving the
// repository. It is deliberately dependency-free: Unicode block glyphs on a
// fixed-width grid.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Bar is one labeled value.
type Bar struct {
	Label string
	Value float64
}

// Config styles a chart.
type Config struct {
	// Title is printed above the chart.
	Title string
	// Width is the maximum bar length in cells (default 48).
	Width int
	// Unit is appended to each value (e.g. "%", "x").
	Unit string
	// Min/Max fix the scale; with both zero the scale fits the data
	// (including zero).
	Min, Max float64
}

// glyphs are the eighth-block partial fills.
var glyphs = []rune(" ▏▎▍▌▋▊▉█")

// HBar renders a horizontal bar chart.
func HBar(w io.Writer, cfg Config, bars []Bar) {
	if cfg.Width <= 0 {
		cfg.Width = 48
	}
	lo, hi := cfg.Min, cfg.Max
	if lo == 0 && hi == 0 {
		for _, b := range bars {
			lo = math.Min(lo, b.Value)
			hi = math.Max(hi, b.Value)
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	labelW := 0
	for _, b := range bars {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	if cfg.Title != "" {
		fmt.Fprintln(w, cfg.Title)
	}
	for _, b := range bars {
		frac := (b.Value - lo) / (hi - lo)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		cells := frac * float64(cfg.Width)
		full := int(cells)
		rem := cells - float64(full)
		var sb strings.Builder
		for i := 0; i < full; i++ {
			sb.WriteRune('█')
		}
		if full < cfg.Width {
			sb.WriteRune(glyphs[int(rem*8)])
		}
		fmt.Fprintf(w, "%-*s │%-*s│ %.2f%s\n", labelW, b.Label, cfg.Width, sb.String(), b.Value, cfg.Unit)
	}
}

// Grouped renders one chart per group label, sharing a scale across groups
// so bars are visually comparable.
func Grouped(w io.Writer, cfg Config, groups []string, series map[string][]Bar) {
	lo, hi := cfg.Min, cfg.Max
	if lo == 0 && hi == 0 {
		for _, bars := range series {
			for _, b := range bars {
				lo = math.Min(lo, b.Value)
				hi = math.Max(hi, b.Value)
			}
		}
	}
	cfg.Min, cfg.Max = lo, hi
	title := cfg.Title
	for _, g := range groups {
		cfg.Title = title + " — " + g
		HBar(w, cfg, series[g])
		fmt.Fprintln(w)
	}
}
