package approx

import "testing"

// refWithin is an independent bit-twiddling reference for the scribe
// comparator: walk every bit position at or above d and require agreement.
// Deliberately structured nothing like the production mask-and-shift.
func refWithin(a, b uint64, w Width, d int) bool {
	if d < 0 {
		return false
	}
	for i := d; i < int(w); i++ {
		if (a>>uint(i))&1 != (b>>uint(i))&1 {
			return false
		}
	}
	return true
}

// refDistance is the loop form of Distance: the highest disagreeing bit
// position below w, plus one.
func refDistance(a, b uint64, w Width) int {
	for i := int(w) - 1; i >= 0; i-- {
		if (a>>uint(i))&1 != (b>>uint(i))&1 {
			return i + 1
		}
	}
	return 0
}

// FuzzSimilar fuzzes the d-distance comparator against its algebraic laws
// and the reference implementation. The comparator decides which stores the
// protocol silently absorbs, so a disagreement here is a correctness bug in
// every simulated result.
func FuzzSimilar(f *testing.F) {
	// The package-doc example (121 vs 125 at 3-distance), sign-bit
	// extremes, and width boundaries.
	f.Add(uint64(121), uint64(125), uint8(2), 3)
	f.Add(uint64(0), ^uint64(0), uint8(3), 63)
	f.Add(uint64(0x80), uint64(0), uint8(0), 7)
	f.Add(uint64(1)<<63, uint64(0), uint8(3), 64)
	f.Add(uint64(42), uint64(42), uint8(1), 0)
	f.Add(uint64(7), uint64(8), uint8(0), -1)
	widths := []Width{W8, W16, W32, W64}
	f.Fuzz(func(t *testing.T, a, b uint64, wsel uint8, d int) {
		w := widths[int(wsel)%len(widths)]
		// Values beyond |w|+small add no new behaviour; keep d small enough
		// that d+1 cannot overflow. Negative d must stay negative.
		if d > 130 || d < -130 {
			d %= 131
		}

		got := Within(a, b, w, d)
		if ref := refWithin(a, b, w, d); got != ref {
			t.Fatalf("Within(%#x, %#x, %d, %d) = %v, reference says %v", a, b, w, d, got, ref)
		}
		if sym := Within(b, a, w, d); got != sym {
			t.Fatalf("Within not symmetric at (%#x, %#x, %d, %d): %v vs %v", a, b, w, d, got, sym)
		}
		if got && !Within(a, b, w, d+1) {
			t.Fatalf("Within not monotone: holds at d=%d but not d=%d (%#x, %#x, w=%d)", d, d+1, a, b, w)
		}
		if d >= 0 && !Within(a, a, w, d) {
			t.Fatalf("Within not reflexive at (%#x, w=%d, d=%d)", a, w, d)
		}
		if d >= int(w) && !got {
			t.Fatalf("d=%d >= width %d must always match", d, w)
		}

		dist := Distance(a, b, w)
		if ref := refDistance(a, b, w); dist != ref {
			t.Fatalf("Distance(%#x, %#x, %d) = %d, reference says %d", a, b, w, dist, ref)
		}
		if dist < 0 || dist > int(w) {
			t.Fatalf("Distance(%#x, %#x, %d) = %d out of [0, %d]", a, b, w, dist, w)
		}
		if Distance(b, a, w) != dist {
			t.Fatalf("Distance not symmetric for (%#x, %#x, %d)", a, b, w)
		}
		if Distance(a, a, w) != 0 {
			t.Fatalf("Distance(%#x, %#x) != 0", a, a)
		}
		// The two APIs must agree: a and b are within d exactly when the
		// distance is at most d (for usable, non-negative d).
		if d >= 0 && got != (dist <= d) {
			t.Fatalf("Within(%#x, %#x, %d, %d)=%v disagrees with Distance=%d", a, b, w, d, got, dist)
		}
	})
}
