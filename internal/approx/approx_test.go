package approx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistancePaperExamples(t *testing.T) {
	// Examples from §2 of the paper.
	cases := []struct {
		a, b uint64
		w    Width
		want int
	}{
		{124, 127, W8, 2}, // 01111100 vs 01111111: low 2 bits differ
		{127, 128, W8, 8}, // 01111111 vs 10000000: all bits differ
		{121, 125, W8, 3}, // 1111001 vs 1111101: 3-distance
		{0, 0, W32, 0},    // identical
		{5, 5, W64, 0},    // identical
		{0, 1, W16, 1},    // lowest bit
		{0, 1 << 15, W16, 16},
		{0xFFFF, 0x0000, W16, 16}, // -1 vs 0: arithmetically close, maximally dissimilar
	}
	for _, c := range cases {
		if got := Distance(c.a, c.b, c.w); got != c.want {
			t.Errorf("Distance(%#x, %#x, %d) = %d, want %d", c.a, c.b, c.w, got, c.want)
		}
	}
}

func TestWithin(t *testing.T) {
	cases := []struct {
		a, b uint64
		w    Width
		d    int
		want bool
	}{
		{124, 127, W8, 2, true},
		{124, 127, W8, 1, false},
		{127, 128, W8, 7, false},
		{127, 128, W8, 8, true}, // d == width: anything goes
		{121, 125, W8, 3, true},
		{121, 125, W8, 2, false},
		{42, 99, W32, -1, false},
		{0xFFFFFFFF, 0, W32, 31, false},
		{1 << 40, 0, W32, 0, true}, // bits above the width are masked off
	}
	for _, c := range cases {
		if got := Within(c.a, c.b, c.w, c.d); got != c.want {
			t.Errorf("Within(%#x, %#x, %d, %d) = %v, want %v", c.a, c.b, c.w, c.d, got, c.want)
		}
	}
}

func TestWidth(t *testing.T) {
	if W32.Bytes() != 4 || W8.Bytes() != 1 || W64.Bytes() != 8 || W16.Bytes() != 2 {
		t.Fatal("Width.Bytes wrong")
	}
	for _, w := range []Width{W8, W16, W32, W64} {
		if !w.Valid() {
			t.Errorf("Width %d should be valid", w)
		}
	}
	if Width(12).Valid() || Width(0).Valid() {
		t.Error("invalid widths reported valid")
	}
	if MaxLegalDistance(W8) != 7 || MaxLegalDistance(W64) != 63 {
		t.Error("MaxLegalDistance wrong")
	}
	if LegalDistance(8, W8) || !LegalDistance(7, W8) || LegalDistance(-1, W32) {
		t.Error("LegalDistance wrong")
	}
}

// Property: Within(a, b, w, d) holds iff Distance(a, b, w) <= d, for legal d.
func TestWithinMatchesDistanceProperty(t *testing.T) {
	f := func(a, b uint64, dRaw uint8) bool {
		for _, w := range []Width{W8, W16, W32, W64} {
			d := int(dRaw) % (int(w) + 1)
			if Within(a, b, w, d) != (Distance(a, b, w) <= d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Distance is a symmetric pseudo-metric bounded by the width, and
// zero exactly for values that agree within the width's mask.
func TestDistanceProperties(t *testing.T) {
	f := func(a, b uint64) bool {
		for _, w := range []Width{W8, W16, W32, W64} {
			d := Distance(a, b, w)
			if d != Distance(b, a, w) {
				return false
			}
			if d < 0 || d > int(w) {
				return false
			}
			same := a&w.mask() == b&w.mask()
			if (d == 0) != same {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: flipping exactly bit k yields distance k+1.
func TestDistanceSingleBitFlip(t *testing.T) {
	f := func(a uint64, kRaw uint8) bool {
		for _, w := range []Width{W8, W16, W32, W64} {
			k := int(kRaw) % int(w)
			b := a ^ (1 << uint(k))
			if Distance(a, b, w) != k+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatRoundTrip(t *testing.T) {
	f32 := func(f float32) bool {
		if math.IsNaN(float64(f)) {
			return true
		}
		return Float32FromBits(Float32Bits(f)) == f
	}
	if err := quick.Check(f32, nil); err != nil {
		t.Error(err)
	}
	f64 := func(f float64) bool {
		if math.IsNaN(f) {
			return true
		}
		return Float64FromBits(Float64Bits(f)) == f
	}
	if err := quick.Check(f64, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatSimilarity(t *testing.T) {
	// Two floats that differ only in low mantissa bits are similar at small d.
	a := Float32Bits(1.0)
	b := a + 3 // perturb the 2 lowest mantissa bits
	if !Within(a, b, W32, 2) {
		t.Error("low-mantissa perturbation should be 2-distance similar")
	}
	// Floats of different sign differ in the top bit: never similar below w.
	if Within(Float32Bits(1.0), Float32Bits(-1.0), W32, 31) {
		t.Error("sign flip must not be similar")
	}
}
