package approx

import "math"

// Float32Bits returns the IEEE-754 bit pattern of f as a uint64 suitable for
// Distance/Within at width W32. d-distance on floats constrains the low
// mantissa bits, per §3.4 of the paper ("small d-distances only apply to the
// mantissa in floating point values").
func Float32Bits(f float32) uint64 { return uint64(math.Float32bits(f)) }

// Float32FromBits is the inverse of Float32Bits.
func Float32FromBits(b uint64) float32 { return math.Float32frombits(uint32(b)) }

// Float64Bits returns the IEEE-754 bit pattern of f as a uint64 suitable for
// Distance/Within at width W64.
func Float64Bits(f float64) uint64 { return math.Float64bits(f) }

// Float64FromBits is the inverse of Float64Bits.
func Float64FromBits(b uint64) float64 { return math.Float64frombits(b) }
