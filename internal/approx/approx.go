// Package approx implements the bit-wise value-similarity arithmetic used by
// the Ghostwriter scribe comparator.
//
// Two values are d-distance similar when they are identical in every bit
// except possibly the d least-significant bits (Wong et al.'s d-distance, as
// adopted by the Ghostwriter paper §2). For example 121 (1111001b) and
// 125 (1111101b) are 3-distance similar: their bits agree above the lowest 3.
// Note that d-distance is a bit-wise notion, not an arithmetic one: -1 and 0
// differ in every bit and are maximally dissimilar despite being
// arithmetically adjacent.
package approx

import "math"

// Width is the size in bits of a compared value. The scribe comparator
// operates on the access width of the store instruction.
type Width uint8

// Supported access widths.
const (
	W8  Width = 8
	W16 Width = 16
	W32 Width = 32
	W64 Width = 64
)

// Bytes returns the access width in bytes.
func (w Width) Bytes() int { return int(w) / 8 }

// Valid reports whether w is one of the supported access widths.
func (w Width) Valid() bool {
	switch w {
	case W8, W16, W32, W64:
		return true
	}
	return false
}

// mask returns a mask with the w low bits set.
func (w Width) mask() uint64 {
	if w >= 64 {
		return math.MaxUint64
	}
	return (uint64(1) << w) - 1
}

// Distance returns the d-distance between a and b at width w: the smallest d
// such that a and b agree on all bits above the d least-significant bits.
// Identical values have distance 0; values differing in the top bit have
// distance w.
func Distance(a, b uint64, w Width) int {
	diff := (a ^ b) & w.mask()
	return bitLen(diff)
}

// Within reports whether a and b are d-distance similar at width w: whether
// all bits above the d least-significant agree. A negative d never matches;
// d >= w always matches (any value may be written, the undesirable extreme
// the paper warns about for narrow types).
func Within(a, b uint64, w Width, d int) bool {
	if d < 0 {
		return false
	}
	if d >= int(w) {
		return true
	}
	diff := (a ^ b) & w.mask()
	return diff>>uint(d) == 0
}

// MaxLegalDistance returns the largest d-distance that still constrains a
// value of width w, i.e. w-1. The paper's compiler rejects d >= w ("using
// 8-distance for byte-sized data would allow any value to be written").
func MaxLegalDistance(w Width) int { return int(w) - 1 }

// LegalDistance reports whether d is a usable d-distance for width w:
// non-negative and strictly below the width.
func LegalDistance(d int, w Width) bool { return d >= 0 && d < int(w) }

// bitLen returns the number of bits needed to represent x (0 for x == 0).
func bitLen(x uint64) int {
	n := 0
	for x != 0 {
		x >>= 1
		n++
	}
	return n
}
